// Concurrent protocol checking (DESIGN.md §9): the checker validates the
// one-sided protocol while ranks run as real threads on the shmem transport.
// Planted violations must be caught with exact counts — an injected torn
// write, a forged barrier separation, an SSP bound break — and legal racy
// executions must produce zero false positives. The standalone tests below
// pin the concurrent-mode relaxations (in-flight consumes, the commit
// history ring, the windowed spurious-torn rule, lost-update accounting).
// Runs clean under TSan (tools/check.sh MALT_SANITIZE=thread stage).

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "src/base/status.h"
#include "src/check/check.h"
#include "src/comm/graph.h"
#include "src/dstorm/dstorm.h"
#include "src/shmem/rank_ctx.h"
#include "src/shmem/shmem_transport.h"

namespace malt {
namespace {

using ApplyPhase = ProtocolChecker::ApplyPhase;
using ReadAction = ProtocolChecker::ReadAction;

std::span<const std::byte> AsBytes(const void* p, size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

uint64_t LoadU64(const std::byte* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

std::vector<std::byte> Payload(size_t n, uint8_t seed) {
  std::vector<std::byte> p(n);
  for (size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>(seed + i);
  }
  return p;
}

// A raw dstorm slot image: u64 seq_front | u32 iter | u32 bytes | payload |
// u64 seq_back. Mismatched stamps model a writer that skipped WriteEnd.
std::vector<std::byte> SlotImage(uint64_t seq_front, uint32_t iter,
                                 std::span<const std::byte> payload, uint64_t seq_back) {
  std::vector<std::byte> wire(check::kPayloadOff + payload.size() + sizeof(uint64_t));
  const auto bytes = static_cast<uint32_t>(payload.size());
  std::memcpy(wire.data() + check::kSeqFrontOff, &seq_front, sizeof(seq_front));
  std::memcpy(wire.data() + check::kIterOff, &iter, sizeof(iter));
  std::memcpy(wire.data() + check::kBytesOff, &bytes, sizeof(bytes));
  std::memcpy(wire.data() + check::kPayloadOff, payload.data(), payload.size());
  std::memcpy(wire.data() + check::kPayloadOff + payload.size(), &seq_back, sizeof(seq_back));
  return wire;
}

// One-queue shadow segment for the standalone concurrent-mode tests:
// stride AlignUp8(16 + 8 + 8) = 32, payload capacity 8, sender rank 1
// writing into rank 0's region under rkey 7.
constexpr uint32_t kRkey = 7;

ProtocolChecker::SegmentLayout OneSenderLayout(int depth) {
  ProtocolChecker::SegmentLayout layout;
  layout.slot_stride = 32;
  layout.obj_bytes = 8;
  layout.queue_depth = depth;
  layout.senders = {1};
  return layout;
}

// Threaded harness like test_shmem_dstorm.cc's ShmemCluster, with a
// concurrent-mode checker bound to the transport — dstorm registers segment
// layouts and drives the read hooks, the transport drives the apply hooks.
struct CheckedCluster {
  explicit CheckedCluster(int n, CheckLevel level = CheckLevel::kFull)
      : checker(level, n),
        transport(n, ShmemOptions{}, nullptr, (checker.SetConcurrent(true), &checker)),
        domain(transport, n) {}

  void Run(const std::function<void(int, Dstorm&, ShmemRankCtx&)>& body) {
    const int n = domain.size();
    std::vector<std::unique_ptr<ShmemRankCtx>> ctxs;
    for (int rank = 0; rank < n; ++rank) {
      ctxs.push_back(std::make_unique<ShmemRankCtx>(rank, transport.clock()));
    }
    std::vector<std::thread> threads;
    for (int rank = 0; rank < n; ++rank) {
      threads.emplace_back([this, rank, &body, &ctxs] {
        Dstorm& d = domain.node(rank);
        d.BindCtx(*ctxs[static_cast<size_t>(rank)]);
        try {
          body(rank, d, *ctxs[static_cast<size_t>(rank)]);
          d.FinishBarriers();
        } catch (const ProcessKilled&) {
          transport.MarkDead(rank);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }
  }

  ProtocolChecker checker;
  ShmemTransport transport;
  DstormDomain domain;
};

// --- planted violations on the real transport ------------------------------

// A rogue write that bypasses dstorm's Scatter posts a slot image with
// mismatched stamps (a writer that "forgot" WriteEnd). The sender-side apply
// hook must flag it exactly once — the second apply half carries the same
// image and stays silent — and the reader's torn-skip of the poisoned slot
// is legal, not a spurious skip.
TEST(CheckShmem, InjectedTornWriteCaughtExactlyOnce) {
  const int n = 2;
  CheckedCluster cluster(n);
  std::atomic<int> consumed{0};

  cluster.Run([&](int rank, Dstorm& d, ShmemRankCtx& ctx) {
    SegmentOptions opts;
    opts.obj_bytes = 8;
    opts.graph = AllToAllGraph(n);
    opts.queue_depth = 2;
    const SegmentId seg = d.CreateSegment(opts);
    const MrHandle victim{1, static_cast<uint32_t>(seg) + 2};

    if (rank == 0) {
      // Rank 1's queue 0 belongs to sender 0; slot 0 sits at offset 0.
      const auto rogue = SlotImage(1, 1, Payload(8, 0x5A), 0);  // front=1, back=0
      ASSERT_TRUE(cluster.transport.PostWrite(0, ctx.Now(), victim, 0, rogue).ok());
      ASSERT_TRUE(d.Barrier().ok());
    } else {
      ASSERT_TRUE(d.Barrier().ok());
      // The rogue image's stamps are word-atomic stores; wait until the
      // front stamp is visible here, then gather over the torn slot.
      ctx.Wait([&] {
        std::byte img[sizeof(uint64_t)];
        return cluster.transport.Read(victim, 0, img) && LoadU64(img) == 1;
      });
      consumed.fetch_add(d.Gather(seg, [](const RecvObject&) {}));
    }
  });

  EXPECT_EQ(consumed.load(), 0);  // the torn object never reached the app
  EXPECT_EQ(cluster.checker.CountFor(check::kSeqlockProtocol), 1)
      << cluster.checker.ReportJson();
  EXPECT_EQ(cluster.checker.violation_count(), 1) << cluster.checker.ReportJson();
}

// Forging a delayed rank's barrier-arrival counter lets the other ranks sail
// through the barrier without it: every rank that exits must be flagged for
// breaking barrier separation against the rank that never entered.
TEST(CheckShmem, ForgedArrivalBreaksBarrierSeparation) {
  const int n = 3;
  CheckedCluster cluster(n);
  std::atomic<int> exited{0};

  cluster.Run([&](int rank, Dstorm& d, ShmemRankCtx& ctx) {
    if (rank == 2) {
      // The delayed rank: never enters the barrier while the others run it.
      ctx.Wait([&] { return exited.load() == 2; });
      return;
    }
    if (rank == 0) {
      // Forge rank 2's arrival at round 1 into both participants' counter
      // arrays (rkey 0, one u64 per rank).
      std::byte wire[sizeof(uint64_t)];
      const uint64_t round = 1;
      std::memcpy(wire, &round, sizeof(round));
      cluster.transport.Write(MrHandle{0, 0}, 2 * sizeof(uint64_t), wire);
      cluster.transport.Write(MrHandle{1, 0}, 2 * sizeof(uint64_t), wire);
    }
    ASSERT_TRUE(d.Barrier().ok());  // completes on the forged counter
    exited.fetch_add(1);
  });

  // Ranks 0 and 1 both exited round 1 while rank 2 had not entered it.
  EXPECT_EQ(cluster.checker.CountFor(check::kBarrierSeparation), 2)
      << cluster.checker.ReportJson();
  EXPECT_EQ(cluster.checker.violation_count(), 2) << cluster.checker.ReportJson();
}

// SSP certification from the concurrent ledger: the shadow's newest applied
// stamp per queue is the independent record of how far each in-neighbor got.
// A gate release within the bound is clean; one past it is flagged.
TEST(CheckShmem, SspBoundBreakFlagged) {
  const int n = 2;
  CheckedCluster cluster(n);
  cluster.checker.SetStalenessBound(2);
  SegmentId seg_id = -1;

  cluster.Run([&](int rank, Dstorm& d, ShmemRankCtx&) {
    SegmentOptions opts;
    opts.obj_bytes = 8;
    opts.graph = AllToAllGraph(n);
    opts.queue_depth = 2;
    const SegmentId seg = d.CreateSegment(opts);
    if (rank == 0) {
      const double v = 1.0;
      ASSERT_TRUE(d.Scatter(seg, AsBytes(&v, sizeof(v)), 1).ok());
      seg_id = seg;
    }
    ASSERT_TRUE(d.Barrier().ok());
  });
  ASSERT_EQ(cluster.checker.violation_count(), 0) << cluster.checker.ReportJson();

  // Rank 0's newest applied stamp on rank 1's shadow is iter 1.
  const std::vector<int> live = {0};
  cluster.checker.OnSspProceed(1, seg_id, 3, live, 0);  // 3 - 1 <= 2: legal
  EXPECT_EQ(cluster.checker.violation_count(), 0) << cluster.checker.ReportJson();
  cluster.checker.OnSspProceed(1, seg_id, 10, live, 0);  // 10 - 1 > 2: stale
  EXPECT_EQ(cluster.checker.CountFor(check::kSspStaleness), 1)
      << cluster.checker.ReportJson();
  EXPECT_EQ(cluster.checker.violation_count(), 1) << cluster.checker.ReportJson();
}

// Zero false positives under real contention: 8 ranks racing scatter/gather
// rounds with overwrite-on-full laps, torn in-flight reads, and periodic
// barriers. Every relaxed rule gets exercised; none may fire.
TEST(CheckShmem, EightRankStressHasNoFalsePositives) {
  const int n = 8;
  const int rounds = 30;
  const size_t dim = 16;
  CheckedCluster cluster(n);

  cluster.Run([&](int rank, Dstorm& d, ShmemRankCtx&) {
    SegmentOptions opts;
    opts.obj_bytes = dim * sizeof(float);
    opts.graph = AllToAllGraph(n);
    opts.queue_depth = 2;
    const SegmentId seg = d.CreateSegment(opts);

    std::vector<float> buf(dim);
    for (int round = 1; round <= rounds; ++round) {
      for (size_t i = 0; i < dim; ++i) {
        buf[i] = static_cast<float>(rank * 1000 + round);
      }
      ASSERT_TRUE(
          d.Scatter(seg, AsBytes(buf.data(), dim * sizeof(float)),
                    static_cast<uint32_t>(round))
              .ok());
      d.Gather(seg, [](const RecvObject&) {});
      if (round % 8 == 0) {
        ASSERT_TRUE(d.Barrier().ok());
      }
    }
    ASSERT_TRUE(d.Barrier().ok());
  });

  EXPECT_GT(cluster.checker.events_checked(), 0);
  EXPECT_EQ(cluster.checker.violation_count(), 0) << cluster.checker.ReportJson();
}

// Partition injection needs a network; under shmem it must fail with a
// clean Status instead of aborting the process.
TEST(CheckShmem, ShmemSetReachableReturnsError) {
  ShmemTransport transport(2);
  const Status status = transport.SetReachable(0, 1, false);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(transport.Reachable(0, 1));  // nothing was partitioned
}

// --- concurrent-mode relaxations, pinned standalone ------------------------

// A reader may validate a store between the sender's WriteEnd and its
// completion hook: consuming the in-flight write is legal (and hash-checked).
TEST(CheckConcurrent, InFlightConsumeIsLegal) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(2));
  const auto payload = Payload(8, 0x11);
  const auto wire = SlotImage(1, 1, payload, 1);

  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFirstHalf, 10);
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, payload, ReadAction::kConsumed, 15);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kSecondHalf, 20);

  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();
}

// A consume matching a recent generation from the slot's history ring is
// legal (the reader snapshotted just before the sender lapped the slot) —
// but its payload must still hash-match the posted bytes.
TEST(CheckConcurrent, HistoryRingAcceptsRecentGenerationAndChecksBytes) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(1));
  const auto old_payload = Payload(8, 0x22);
  const auto new_payload = Payload(8, 0x33);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, old_payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(2, 2, new_payload, 2),
                             ApplyPhase::kFull, 20);

  // Snapshot of the lapped generation, byte-exact: clean.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, old_payload, ReadAction::kConsumed, 25);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();

  // Same generation with foreign bytes: torn bytes escaped the stamps.
  ProtocolChecker strict(CheckLevel::kFull, 2);
  strict.SetConcurrent(true);
  strict.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(1));
  strict.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, old_payload, 1),
                            ApplyPhase::kFull, 10);
  strict.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(2, 2, new_payload, 2),
                            ApplyPhase::kFull, 20);
  strict.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, new_payload, ReadAction::kConsumed, 25);
  EXPECT_EQ(strict.CountFor(check::kTornReadEscape), 1) << strict.ReportJson();
}

// A consumed seq newer than anything the ledger ever saw begin is still a
// phantom in concurrent mode.
TEST(CheckConcurrent, PhantomReadStillFlagged) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(2));
  const auto payload = Payload(8, 0x44);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);

  checker.OnSlotRead(0, kRkey, 0, 1, 4, 4, 4, payload, ReadAction::kConsumed, 20);
  EXPECT_EQ(checker.CountFor(check::kPhantomRead), 1) << checker.ReportJson();
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

// The windowed spurious-torn rule: a torn skip racing a write that began
// since the reader's last visit is legal; a torn skip with no write begun in
// the window (nothing could have been in flight) is spurious.
TEST(CheckConcurrent, SpuriousTornSkipIsWindowed) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(2));
  const auto payload = Payload(8, 0x55);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);

  // First visit: the write began after the reader's (never-happened) last
  // visit — a racy torn observation is plausible. Legal.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 0, 1, {}, ReadAction::kSkippedTorn, 20);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();

  // Second visit with no intervening write: nothing was in flight at any
  // point the reader could have observed. Spurious.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 0, 1, {}, ReadAction::kSkippedTorn, 30);
  EXPECT_EQ(checker.CountFor(check::kSpuriousTornSkip), 1) << checker.ReportJson();
}

// Lost-update certification: a committed, never-consumed generation the
// reader demonstrably visited and then stepped over — with no queue-depth
// lap to excuse the drop — is a lost update.
TEST(CheckConcurrent, SteppedOverCommittedUpdateIsLost) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(4));
  const auto payload = Payload(8, 0x66);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(2, 1, payload, 2),
                             ApplyPhase::kFull, 20);

  // The buggy reader visits seq 1 and misjudges it stale (flagged as a
  // discipline break), then consumes seq 2 over the gap: seq 1 sits
  // committed and unconsumed with no lap — a lost update.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, {}, ReadAction::kSkippedStale, 30);
  EXPECT_EQ(checker.CountFor(check::kSeqDiscipline), 1) << checker.ReportJson();
  checker.OnSlotRead(0, kRkey, 0, 1, 2, 2, 1, payload, ReadAction::kConsumed, 40);
  EXPECT_EQ(checker.CountFor(check::kLostUpdate), 1) << checker.ReportJson();
  EXPECT_EQ(checker.violation_count(), 2) << checker.ReportJson();
}

// Overwrite-on-full drops are accounted but not violations: a sender lapping
// a slow reader is the protocol's documented drop mode, and the gap consume
// that follows is excused by the lap.
TEST(CheckConcurrent, QueueDepthLapIsAccountedNotFlagged) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.SetConcurrent(true);
  checker.OnSegmentCreate(0, kRkey, 0, OneSenderLayout(2));
  const auto payload = Payload(8, 0x77);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(2, 1, payload, 2),
                             ApplyPhase::kFull, 20);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(3, 2, payload, 3),
                             ApplyPhase::kFull, 30);  // laps unconsumed seq 1

  EXPECT_EQ(checker.lost_updates(), 1);  // the drop is on the books
  checker.OnSlotRead(0, kRkey, 0, 0, 3, 3, 2, payload, ReadAction::kConsumed, 40);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();
}

}  // namespace
}  // namespace malt
