// MetricsStreamer: periodic NDJSON delta snapshots of a live cluster.
// Covers the record schema (seq/ts_ns/counters/gauges/histograms), delta
// semantics (counters report movement since the previous record, quiet ticks
// are skipped, Finish always writes), trace-loss mirroring into
// telemetry.trace.dropped, and an 8-rank shared-memory stress where the
// sampler thread races real worker threads (tools/check.sh re-runs this
// suite under ThreadSanitizer).

#include "src/telemetry/stream.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/runtime.h"

namespace malt {
namespace {

std::vector<std::string> Lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(Stream, DeltaRecordsSkipQuietTicksAndFinishForces) {
  const std::string path = testing::TempDir() + "stream_unit.ndjson";
  TelemetryDomain domain(2);
  Counter* c0 = domain.rank(0).metrics.GetCounter("app.steps");
  Counter* c1 = domain.rank(1).metrics.GetCounter("app.steps");
  HistogramMetric* h = domain.rank(0).metrics.GetHistogram(
      EdgeMetricName(1, 0, "delivery_ns"), EdgeDeliveryHistogramOptions());

  MetricsStreamer streamer(&domain, path);
  ASSERT_TRUE(streamer.status().ok()) << streamer.status().ToString();

  c0->Add(5);
  c1->Add(2);
  h->Observe(1500.0);
  streamer.Sample(100);
  c0->Add(3);
  streamer.Sample(200);
  streamer.Sample(300);  // nothing moved: skipped
  streamer.Finish(400);  // unconditional

  EXPECT_EQ(streamer.samples(), 3);
  const std::vector<std::string> lines = Lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"ts_ns\":"), std::string::npos);
  }
  // First record (seq is 0-based): aggregate of both ranks, histogram with
  // count + quantiles.
  EXPECT_NE(lines[0].find("\"seq\":0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"app.steps\":7"), std::string::npos);
  EXPECT_NE(lines[0].find("\"comm.edge.1-0.delivery_ns\":{\"count\":1"), std::string::npos);
  EXPECT_NE(lines[0].find("\"p50\":"), std::string::npos);
  // Second record: only the 3-step delta, no histogram (its count is flat).
  EXPECT_NE(lines[1].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[1].find("\"app.steps\":3"), std::string::npos);
  EXPECT_EQ(lines[1].find("delivery_ns"), std::string::npos);
  // Final record is the forced Finish at ts 400 with nothing new.
  EXPECT_NE(lines[2].find("\"seq\":2"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ts_ns\":400"), std::string::npos);
}

TEST(Stream, MirrorsTraceLossIntoDroppedCounter) {
  TelemetryOptions topt;
  topt.trace_capacity = 4;
  TelemetryDomain domain(1, topt);
  for (int i = 0; i < 10; ++i) {
    domain.rank(0).trace.Instant("tick", i);
  }
  const std::string path = testing::TempDir() + "stream_dropped.ndjson";
  MetricsStreamer streamer(&domain, path);
  streamer.Finish(50);
  const std::vector<std::string> lines = Lines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"telemetry.trace.dropped\":6"), std::string::npos);
  EXPECT_EQ(domain.Merged().GetCounter("telemetry.trace.dropped")->value(), 6);
}

// 8 concurrent worker threads scatter/gather while the wall-clock sampler
// snapshots the shared registries mid-run. The assertions here are about the
// stream's integrity; the data-race half of the contract is enforced by the
// TSan stage in tools/check.sh re-running this binary.
TEST(Stream, ShmemEightRankSamplerStress) {
  const std::string path = testing::TempDir() + "stream_shmem8.ndjson";
  MaltOptions options;
  options.transport = TransportKind::kShmem;
  options.ranks = 8;
  options.telemetry.metrics_interval_ms = 2;
  options.telemetry.metrics_stream_path = path;
  Malt malt(options);
  malt.Run([](Worker& w) {
    MaltVector v = w.CreateVector("model", 256);
    for (int round = 0; round < 20; ++round) {
      v.set_iteration(static_cast<uint32_t>(round + 1));
      ASSERT_TRUE(v.Scatter().ok());
      ASSERT_TRUE(w.Barrier().ok());
      v.GatherAverage();
      ASSERT_TRUE(w.Barrier().ok());
    }
  });

  ASSERT_NE(malt.metrics_streamer(), nullptr);
  EXPECT_TRUE(malt.metrics_streamer()->status().ok());
  EXPECT_GE(malt.metrics_streamer()->samples(), 1);

  const std::vector<std::string> lines = Lines(path);
  ASSERT_GE(lines.size(), 1u);
  for (size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(lines[i].front(), '{');
    EXPECT_EQ(lines[i].back(), '}');
    std::ostringstream want_seq;
    want_seq << "\"seq\":" << i << ",";
    EXPECT_NE(lines[i].find(want_seq.str()), std::string::npos)
        << "record " << i << " out of sequence: " << lines[i].substr(0, 60);
  }
  // The full run's worth of scatters must be visible across the stream: the
  // per-record deltas of one counter sum to its final merged value.
  int64_t scatters = 0;
  for (const std::string& line : lines) {
    const size_t at = line.find("\"vol.scatters\":");
    if (at != std::string::npos) {
      scatters += std::stoll(line.substr(at + 15));
    }
  }
  EXPECT_EQ(scatters, 8 * 20);
}

// The sim backend samples on VIRTUAL time from an auxiliary engine process:
// records are stamped with the run's virtual clock and the sampler never
// deadlocks the engine (it exits when every rank process finishes).
TEST(Stream, SimSamplerRunsOnVirtualTime) {
  const std::string path = testing::TempDir() + "stream_sim.ndjson";
  MaltOptions options;
  options.transport = TransportKind::kSim;
  options.ranks = 4;
  options.telemetry.metrics_interval_ms = 1;
  options.telemetry.metrics_stream_path = path;
  Malt malt(options);
  malt.Run([](Worker& w) {
    MaltVector v = w.CreateVector("model", 64);
    for (int round = 0; round < 10; ++round) {
      // Charge enough virtual compute that several 1 ms sampler ticks fire.
      w.ChargeSeconds(0.001);
      v.set_iteration(static_cast<uint32_t>(round + 1));
      ASSERT_TRUE(v.Scatter().ok());
      ASSERT_TRUE(w.Barrier().ok());
      v.GatherAverage();
      ASSERT_TRUE(w.Barrier().ok());
    }
  });
  ASSERT_NE(malt.metrics_streamer(), nullptr);
  EXPECT_GE(malt.metrics_streamer()->samples(), 3);
  const std::vector<std::string> lines = Lines(path);
  ASSERT_GE(lines.size(), 3u);
  // Timestamps are virtual nanoseconds and strictly increase.
  int64_t prev = -1;
  for (const std::string& line : lines) {
    const size_t at = line.find("\"ts_ns\":");
    ASSERT_NE(at, std::string::npos);
    const int64_t ts = std::stoll(line.substr(at + 8));
    EXPECT_GT(ts, prev);
    prev = ts;
  }
}

// Concurrent writers: rank threads hammer counters and histogram Observe
// while the sampler emits percentile records and the health layer appends
// typed critical_path lines through AppendLine. Every line must come out
// whole (the writer lock may not interleave records), and the histogram
// records must carry percentiles computed mid-Observe without tearing.
// TSan re-runs this via the shmem label in tools/check.sh.
TEST(Stream, ConcurrentWritersInterleaveObserveAndAppendLine) {
  const std::string path = testing::TempDir() + "stream_conc.ndjson";
  const int n = 4;
  const int kOps = 3000;
  const int kAppends = 40;
  TelemetryDomain domain(n);
  MetricsStreamer streamer(&domain, path);
  ASSERT_TRUE(streamer.status().ok());

  std::vector<std::thread> workers;
  for (int r = 0; r < n; ++r) {
    workers.emplace_back([&domain, r] {
      Counter* c = domain.rank(r).metrics.GetCounter("app.steps");
      HistogramMetric* h = domain.rank(r).metrics.GetHistogram(
          EdgeMetricName(r, (r + 1) % n, "delivery_ns"), EdgeDeliveryHistogramOptions());
      for (int i = 0; i < kOps; ++i) {
        c->Add(1);
        h->Observe(1000.0 + static_cast<double>(i % 97) * 50.0);
      }
    });
  }
  std::thread appender([&streamer] {
    for (int i = 0; i < kAppends; ++i) {
      std::string line("{\"type\":\"critical_path\",\"epoch\":");
      line.append(std::to_string(i));
      line.append("}\n");
      streamer.AppendLine(line);
    }
  });
  // Sample from this thread while everything above is in flight.
  int64_t ticks = 0;
  while (ticks < 50) {
    streamer.Sample(++ticks * 1000);
  }
  for (std::thread& t : workers) {
    t.join();
  }
  appender.join();
  streamer.Sample((ticks + 1) * 1000);  // capture any trailing movement
  streamer.Finish((ticks + 2) * 1000);
  ASSERT_TRUE(streamer.status().ok()) << streamer.status().ToString();

  const std::vector<std::string> lines = Lines(path);
  int64_t total_steps = 0;
  int typed = 0;
  int histogram_records = 0;
  for (const std::string& line : lines) {
    // Whole records only: one JSON object per line, never torn.
    ASSERT_EQ(line.front(), '{') << line;
    ASSERT_EQ(line.back(), '}') << line;
    if (line.find("\"type\":\"critical_path\"") != std::string::npos) {
      ++typed;
      continue;
    }
    const size_t at = line.find("\"app.steps\":");
    if (at != std::string::npos) {
      total_steps += std::stoll(line.substr(at + 12));
    }
    if (line.find("delivery_ns") != std::string::npos) {
      ++histogram_records;
      EXPECT_NE(line.find("\"p50\":"), std::string::npos) << line;
      EXPECT_NE(line.find("\"count\":"), std::string::npos) << line;
    }
  }
  EXPECT_EQ(typed, kAppends);
  // Counter deltas across all sample records add up to every op exactly once.
  EXPECT_EQ(total_steps, static_cast<int64_t>(n) * kOps);
  EXPECT_GE(histogram_records, 1);
}

}  // namespace
}  // namespace malt
