// Protocol-checker validation (DESIGN.md §9): every planted fault must be
// reported as exactly the expected violation kind, and clean protocol
// executions — including ones where torn writes genuinely occur and are
// correctly skipped — must produce zero violations. True-positive and
// zero-false-positive coverage for src/check/check.{h,cc}.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include <span>
#include <string>
#include <vector>

#include "src/check/check.h"
#include "src/comm/graph.h"
#include "src/dstorm/dstorm.h"
#include "src/sim/engine.h"
#include "src/simnet/fabric.h"

namespace malt {
namespace {

using ApplyPhase = ProtocolChecker::ApplyPhase;
using ReadAction = ProtocolChecker::ReadAction;
using SegmentLayout = ProtocolChecker::SegmentLayout;

// One wire-format slot image: u64 seq_front | u32 iter | u32 bytes |
// payload | u64 seq_back. Mismatched stamps model a writer that skipped
// WriteEnd (the "no-seqlock" writer).
std::vector<std::byte> SlotImage(uint64_t seq_front, uint32_t iter,
                                 std::span<const std::byte> payload, uint64_t seq_back) {
  std::vector<std::byte> wire(check::kPayloadOff + payload.size() + sizeof(uint64_t));
  const auto bytes = static_cast<uint32_t>(payload.size());
  std::memcpy(wire.data() + check::kSeqFrontOff, &seq_front, sizeof(seq_front));
  std::memcpy(wire.data() + check::kIterOff, &iter, sizeof(iter));
  std::memcpy(wire.data() + check::kBytesOff, &bytes, sizeof(bytes));
  std::memcpy(wire.data() + check::kPayloadOff, payload.data(), payload.size());
  std::memcpy(wire.data() + check::kPayloadOff + payload.size(), &seq_back, sizeof(seq_back));
  return wire;
}

std::vector<std::byte> Payload(size_t n, uint8_t fill) {
  return std::vector<std::byte>(n, static_cast<std::byte>(fill));
}

// A one-queue shadow segment on node 0 fed by rank 1: obj_bytes 8, depth 2,
// stride AlignUp8(16 + 8 + 8) = 32. Registered under an arbitrary rkey.
constexpr uint32_t kRkey = 7;
constexpr int kSegId = 0;
constexpr size_t kObjBytes = 8;

SegmentLayout OneSenderLayout() {
  SegmentLayout layout;
  layout.slot_stride = 32;
  layout.obj_bytes = kObjBytes;
  layout.queue_depth = 2;
  layout.senders = {1};
  return layout;
}

// --- level plumbing -----------------------------------------------------------

TEST(CheckLevel, ParseRoundTrips) {
  EXPECT_EQ(*ParseCheckLevel("off"), CheckLevel::kOff);
  EXPECT_EQ(*ParseCheckLevel("cheap"), CheckLevel::kCheap);
  EXPECT_EQ(*ParseCheckLevel("full"), CheckLevel::kFull);
  EXPECT_FALSE(ParseCheckLevel("loud").ok());
  EXPECT_EQ(ToString(CheckLevel::kFull), "full");
}

TEST(CheckLevel, OffLevelIsInert) {
  ProtocolChecker checker(CheckLevel::kOff, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0xAA);
  const auto wire = SlotImage(1, 1, payload, 0);  // torn stamps: would violate
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFull, 10);
  checker.OnBarrierEnter(0, 1, 20);
  EXPECT_FALSE(checker.enabled());
  EXPECT_EQ(checker.events_checked(), 0);
  EXPECT_EQ(checker.violation_count(), 0);
}

// --- clean paths must be violation-free ---------------------------------------

TEST(CheckLedger, CleanSingleWriterRoundTrip) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  // seq s lands in slot (s-1) % depth; consume each write before the writer
  // laps it, exactly as dstorm's round-robin protocol behaves.
  for (uint64_t seq = 1; seq <= 4; ++seq) {
    const auto payload = Payload(kObjBytes, static_cast<uint8_t>(seq));
    const auto wire = SlotImage(seq, static_cast<uint32_t>(seq), payload, seq);
    const size_t slot = (seq - 1) % 2;
    checker.OnRemoteWriteApply(1, 0, kRkey, slot * 32, wire, ApplyPhase::kFull,
                               static_cast<SimTime>(seq * 10));
    checker.OnSlotRead(0, kRkey, 0, static_cast<int>(slot), seq, seq,
                       static_cast<uint32_t>(seq), payload, ReadAction::kConsumed,
                       static_cast<SimTime>(seq * 10 + 5));
  }
  // Re-scanning an already-consumed slot as stale is the normal gather path.
  checker.OnSlotRead(0, kRkey, 0, 1, 4, 4, 4, {}, ReadAction::kSkippedStale, 60);
  EXPECT_GT(checker.events_checked(), 0);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();
}

TEST(CheckLedger, SplitApplyCompletedInOrderIsClean) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x5A);
  const auto wire = SlotImage(1, 1, payload, 1);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFirstHalf, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kSecondHalf, 14);
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, payload, ReadAction::kConsumed, 20);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();
}

// --- planted faults: each must be caught as exactly its kind ------------------

TEST(CheckLedger, ConsumeDuringSplitApplyIsTornEscape) {
  // The ISSUE's planted fault: header+payload land (first half) but the
  // trailer has not, and the reader consumes anyway.
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x11);
  const auto wire = SlotImage(1, 1, payload, 1);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFirstHalf, 10);
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, payload, ReadAction::kConsumed, 12);
  EXPECT_EQ(checker.CountFor(check::kTornReadEscape), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckLedger, StragglerSecondHalfLeavesSlotTorn) {
  // slot 0 holds committed seq 1; seq 3 begins (first half), then a straggling
  // second half of seq 1 arrives. The slot is a mix of two writes: consuming
  // it must be flagged even though the reader saw matching stamps.
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto old_payload = Payload(kObjBytes, 0x01);
  const auto new_payload = Payload(kObjBytes, 0x03);
  const auto old_wire = SlotImage(1, 1, old_payload, 1);
  const auto new_wire = SlotImage(3, 2, new_payload, 3);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, old_wire, ApplyPhase::kFull, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(2, 1, old_payload, 2),
                             ApplyPhase::kFull, 20);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, new_wire, ApplyPhase::kFirstHalf, 30);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, old_wire, ApplyPhase::kSecondHalf, 31);
  checker.OnSlotRead(0, kRkey, 0, 0, 3, 3, 2, new_payload, ReadAction::kConsumed, 40);
  EXPECT_EQ(checker.CountFor(check::kTornReadEscape), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckLedger, FullLevelHashCatchesSilentCorruption) {
  // Stamps match and the seq is right, but the bytes handed to the app are
  // not the committed write. Only the full level can see this.
  const auto committed = Payload(kObjBytes, 0xAA);
  const auto corrupted = Payload(kObjBytes, 0xBB);
  const auto wire = SlotImage(1, 1, committed, 1);

  ProtocolChecker full(CheckLevel::kFull, 2);
  full.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  full.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFull, 10);
  full.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, corrupted, ReadAction::kConsumed, 20);
  EXPECT_EQ(full.CountFor(check::kTornReadEscape), 1);
  EXPECT_EQ(full.violation_count(), 1);

  ProtocolChecker cheap(CheckLevel::kCheap, 2);
  cheap.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  cheap.OnRemoteWriteApply(1, 0, kRkey, 0, wire, ApplyPhase::kFull, 10);
  cheap.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, corrupted, ReadAction::kConsumed, 20);
  EXPECT_EQ(cheap.violation_count(), 0) << "cheap level does not hash payloads";
}

TEST(CheckLedger, DuplicateConsumeFlagged) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x22);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, payload, ReadAction::kConsumed, 20);
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, payload, ReadAction::kConsumed, 30);
  EXPECT_EQ(checker.CountFor(check::kDuplicateConsume), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckLedger, PhantomReadFlagged) {
  // The reader claims a seq the ledger never saw land in this slot.
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x33);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnSlotRead(0, kRkey, 0, 0, 7, 7, 1, payload, ReadAction::kConsumed, 20);
  EXPECT_EQ(checker.CountFor(check::kPhantomRead), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckLedger, WriteSideIterRegressionFlagged) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x44);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 5, payload, 1),
                             ApplyPhase::kFull, 10);
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(2, 3, payload, 2),
                             ApplyPhase::kFull, 20);
  EXPECT_EQ(checker.CountFor(check::kIterRegression), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckLedger, SeqGapAndSlotMismatchAreDisciplineViolations) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x55);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  // seq jumps 1 -> 5 AND seq 5 belongs in slot (5-1)%2 = 0, not slot 1.
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(5, 2, payload, 5),
                             ApplyPhase::kFull, 20);
  EXPECT_EQ(checker.CountFor(check::kSeqDiscipline), 2);
  EXPECT_EQ(checker.violation_count(), 2) << checker.ReportJson();
}

TEST(CheckLedger, ForeignWriterMisalignmentAndCorruptHeaders) {
  SegmentLayout layout;
  layout.slot_stride = 32;
  layout.obj_bytes = kObjBytes;
  layout.queue_depth = 2;
  layout.senders = {1, 2};  // queue 0 belongs to rank 1, queue 1 to rank 2
  ProtocolChecker checker(CheckLevel::kCheap, 3);
  checker.OnSegmentCreate(0, kRkey, kSegId, layout);
  const auto payload = Payload(kObjBytes, 0x66);

  // Rank 2 writes (valid image) into rank 1's queue.
  checker.OnRemoteWriteApply(2, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  EXPECT_EQ(checker.CountFor(check::kWrongQueue), 1);

  // A write that is not on a slot boundary.
  checker.OnRemoteWriteApply(1, 0, kRkey, 4, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 20);
  EXPECT_EQ(checker.CountFor(check::kSlotMisaligned), 1);

  // Too short to be a slot image, and a byte count exceeding obj_bytes.
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, Payload(8, 0), ApplyPhase::kFull, 30);
  checker.OnRemoteWriteApply(1, 0, kRkey, 32, SlotImage(1, 1, Payload(12, 0), 1),
                             ApplyPhase::kFull, 40);
  EXPECT_EQ(checker.CountFor(check::kHeaderCorrupt), 2);
  EXPECT_EQ(checker.violation_count(), 4) << checker.ReportJson();
}

TEST(CheckLedger, ReaderMisjudgmentsFlagged) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x77);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  // The ledger says seq 1 is cleanly committed: skipping it as torn means the
  // reader's stamp scan is broken.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 0, 1, {}, ReadAction::kSkippedTorn, 20);
  EXPECT_EQ(checker.CountFor(check::kSpuriousTornSkip), 1);
  // Skipping a never-consumed seq as stale loses an update silently.
  checker.OnSlotRead(0, kRkey, 0, 0, 1, 1, 1, {}, ReadAction::kSkippedStale, 30);
  EXPECT_EQ(checker.CountFor(check::kSeqDiscipline), 1);
  EXPECT_EQ(checker.violation_count(), 2) << checker.ReportJson();
}

// --- barrier / staleness certification ----------------------------------------

TEST(CheckBarrier, SeparationViolationAndVectorClockJoin) {
  ProtocolChecker checker(CheckLevel::kCheap, 3);
  checker.OnBarrierEnter(0, 1, 10);
  checker.OnBarrierEnter(1, 1, 11);
  const std::vector<int> members = {0, 1, 2};
  // Rank 2 never entered round 1: exiting past it breaks barrier separation.
  checker.OnBarrierExit(0, 1, members, 20);
  EXPECT_EQ(checker.CountFor(check::kBarrierSeparation), 1);
  // Once rank 2 is known-finished its counter is "infinity" — exempt.
  checker.OnRankFinished(2);
  checker.OnBarrierExit(1, 1, members, 21);
  EXPECT_EQ(checker.CountFor(check::kBarrierSeparation), 1);
  // The exit joined rank 0's clock into rank 1's.
  EXPECT_EQ(checker.VectorClock(1)[0], 1u);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckBarrier, RoundRegressionFlaggedButResumeIsNot) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.OnBarrierEnter(0, 5, 10);
  checker.OnBarrierEnter(0, 5, 11);  // BarrierResume re-arms the same round
  EXPECT_EQ(checker.violation_count(), 0);
  checker.OnBarrierEnter(0, 4, 12);
  EXPECT_EQ(checker.CountFor(check::kBarrierRegression), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckSsp, StalenessBoundCertified) {
  ProtocolChecker checker(CheckLevel::kCheap, 2);
  checker.SetStalenessBound(2);
  checker.OnSegmentCreate(0, kRkey, kSegId, OneSenderLayout());
  const auto payload = Payload(kObjBytes, 0x88);
  checker.OnRemoteWriteApply(1, 0, kRkey, 0, SlotImage(1, 1, payload, 1),
                             ApplyPhase::kFull, 10);
  const std::vector<int> live = {1};
  checker.OnSspProceed(0, kSegId, 3, live, 20);  // 3 - 2 <= 1: within bound
  EXPECT_EQ(checker.violation_count(), 0);
  checker.OnSspProceed(0, kSegId, 4, live, 30);  // 4 - 2 > 1: bound broken
  EXPECT_EQ(checker.CountFor(check::kSspStaleness), 1);
  // No live in-neighbors: the gate is vacuously open at any iter.
  checker.OnSspProceed(0, kSegId, 100, {}, 40);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

TEST(CheckVol, ScatterStampRegressionFlagged) {
  ProtocolChecker checker(CheckLevel::kCheap, 1);
  checker.OnVolScatter(0, kSegId, 5, 10);
  checker.OnVolScatter(0, kSegId, 5, 11);  // repeat of the same iter is fine
  checker.OnVolScatter(0, kSegId, 4, 12);
  EXPECT_EQ(checker.CountFor(check::kIterRegression), 1);
  checker.OnVolScatter(0, kSegId, 9, 13);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
}

// --- SeqLock call discipline --------------------------------------------------

TEST(CheckSeqLock, DisciplineAcceptsProtocolAndRejectsAbuse) {
  ProtocolChecker checker(CheckLevel::kCheap, 1);
  SeqLockDiscipline lock(&checker, 0);
  lock.OnWriteBegin(1, 10);
  lock.OnWriteEnd(2, 11);
  lock.OnReadValidate(2, 2, /*accepted=*/true, 12);
  lock.OnReadValidate(1, 2, /*accepted=*/false, 13);  // conservative reject: fine
  EXPECT_EQ(checker.violation_count(), 0);

  lock.OnWriteBegin(3, 20);
  lock.OnWriteBegin(4, 21);  // begin while a write is open: even->odd broken
  EXPECT_EQ(checker.CountFor(check::kSeqlockProtocol), 1);
  lock.OnWriteEnd(5, 22);  // 4 is even, so this "end" is also out of protocol
  EXPECT_EQ(checker.CountFor(check::kSeqlockProtocol), 2);
  lock.OnReadValidate(5, 5, /*accepted=*/true, 23);  // accepted an odd sequence
  lock.OnReadValidate(2, 4, /*accepted=*/true, 24);  // accepted begin != end
  EXPECT_EQ(checker.CountFor(check::kSeqlockProtocol), 4);
  EXPECT_EQ(checker.violation_count(), 4) << checker.ReportJson();
}

// --- report shape -------------------------------------------------------------

TEST(CheckReport, JsonCarriesKindsAndSamples) {
  ProtocolChecker checker(CheckLevel::kFull, 2);
  checker.ReportViolation(check::kTornReadEscape, 1, 42, "planted");
  const std::string json = checker.ReportJson();
  EXPECT_NE(json.find("\"level\":\"full\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"violations\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"torn_read_escape\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"detail\":\"planted\""), std::string::npos) << json;

  const std::string path = ::testing::TempDir() + "check_report.json";
  ASSERT_TRUE(checker.WriteReportJson(path).ok());
}

// --- end-to-end: a rogue writer on the real stack -----------------------------

TEST(CheckIntegration, RogueNoSeqlockWriterCaughtOnRealFabric) {
  // Rank 0 runs the real protocol once, then posts a raw slot image with
  // mismatched stamps (a writer with no WriteEnd) straight through the
  // fabric into rank 1's receive region. Expect exactly one seqlock_protocol
  // violation at apply time; rank 1's gather must skip the torn slot without
  // consuming it (and without any spurious-skip or escape reports).
  Engine engine;
  ProtocolChecker checker(CheckLevel::kFull, 2);
  FabricOptions fopts;
  fopts.net.latency = 1000;
  fopts.net.bandwidth_bytes_per_sec = 1e9;
  fopts.net.per_message_overhead = 0;
  Fabric fabric(engine, 2, fopts, nullptr, &checker);
  DstormDomain domain(engine, fabric, 2);
  int first_gather = -1;
  int second_gather = -1;

  for (int rank = 0; rank < 2; ++rank) {
    engine.AddProcess("r" + std::to_string(rank), [&, rank](Process& p) {
      Dstorm& d = domain.node(rank);
      d.Bind(p);
      SegmentOptions opts;
      opts.obj_bytes = 8;
      opts.graph = RingGraph(2);
      opts.queue_depth = 2;
      const SegmentId seg = d.CreateSegment(opts);
      if (rank == 0) {
        const auto payload = Payload(8, 0x42);
        ASSERT_TRUE(d.Scatter(seg, payload, 1).ok());
        ASSERT_TRUE(d.Flush().ok());
        ASSERT_TRUE(d.Barrier().ok());  // B1: rank 1 gathers the clean object
        ASSERT_TRUE(d.Barrier().ok());  // B2: gather done
        // Segment receive regions are registered after the barrier counters
        // (rkey 0) and probe scratch (rkey 1), so segment `seg` lives at
        // rkey seg + 2 on every node — the same computation a sender does.
        MrHandle victim;
        victim.node = 1;
        victim.rkey = static_cast<uint32_t>(seg) + 2;
        const auto rogue = SlotImage(5, 2, Payload(8, 0x66), 4);
        p.WaitUntil([&] { return fabric.HasSendRoom(0); });
        ASSERT_TRUE(fabric.PostWrite(0, p.now(), victim, 0, rogue).ok());
        ASSERT_TRUE(d.Flush().ok());    // completion implies the write applied
        ASSERT_TRUE(d.Barrier().ok());  // B3: rank 1 may gather again
      } else {
        ASSERT_TRUE(d.Barrier().ok());  // B1
        first_gather = d.Gather(seg, [](const RecvObject&) {});
        ASSERT_TRUE(d.Barrier().ok());  // B2
        ASSERT_TRUE(d.Barrier().ok());  // B3
        second_gather = d.Gather(seg, [](const RecvObject&) {});
      }
    });
  }
  engine.Run();

  EXPECT_EQ(first_gather, 1);
  EXPECT_EQ(second_gather, 0) << "the torn slot must not be consumed";
  EXPECT_EQ(checker.CountFor(check::kSeqlockProtocol), 1);
  EXPECT_EQ(checker.violation_count(), 1) << checker.ReportJson();
  EXPECT_EQ(checker.violations()[0].rank, 1);  // observed on the victim node
  // The reader did hit the rogue slot and (correctly) skipped it.
  EXPECT_GE(fabric.telemetry().rank(1).metrics.GetCounter("dstorm.torn_slots_skipped")->value(),
            1);
  EXPECT_EQ(checker.CountFor(check::kSpuriousTornSkip), 0);
  EXPECT_EQ(checker.CountFor(check::kTornReadEscape), 0);
}

TEST(CheckIntegration, TornWriteSimulationIsCleanUnderFullCheck) {
  // torn_writes=true makes the fabric genuinely apply writes in two halves,
  // so readers race real in-flight writes. With serialization >= latency the
  // protocol holds: gathers skip every torn slot, and the full-level checker
  // (payload hashes on) must find nothing — the zero-false-positive property
  // on the hardest clean path.
  Engine engine;
  ProtocolChecker checker(CheckLevel::kFull, 3);
  FabricOptions fopts;
  fopts.net.latency = 1000;                    // 1 us
  fopts.net.bandwidth_bytes_per_sec = 1e9;     // 4 KB serializes in ~4 us
  fopts.net.per_message_overhead = 0;
  fopts.torn_writes = true;
  Fabric fabric(engine, 3, fopts, nullptr, &checker);
  DstormDomain domain(engine, fabric, 3);
  constexpr size_t kBytes = 4096;

  for (int rank = 0; rank < 3; ++rank) {
    engine.AddProcess("r" + std::to_string(rank), [&, rank](Process& p) {
      Dstorm& d = domain.node(rank);
      d.Bind(p);
      SegmentOptions opts;
      opts.obj_bytes = kBytes;
      opts.graph = AllToAllGraph(3);
      opts.queue_depth = 2;
      const SegmentId seg = d.CreateSegment(opts);
      if (rank != 0) {
        std::vector<std::byte> payload(kBytes);
        for (uint32_t iter = 1; iter <= 200; ++iter) {
          std::memset(payload.data(), static_cast<int>(iter & 0xFF), payload.size());
          (void)d.Scatter(seg, payload, iter);
          p.Advance(5000);
        }
        (void)d.Flush();
        return;
      }
      for (int poll = 0; poll < 300; ++poll) {
        p.Advance(997);  // polls inside the senders' ~4 us torn windows
        d.Gather(seg, [](const RecvObject&) {});
      }
    });
  }
  engine.Run();

  // The torn path was actually exercised...
  EXPECT_GE(fabric.telemetry().rank(0).metrics.GetCounter("dstorm.torn_slots_skipped")->value(),
            1);
  // ...and the checker certified every read decision against its ledger.
  EXPECT_GT(checker.events_checked(), 0);
  EXPECT_EQ(checker.violation_count(), 0) << checker.ReportJson();
}

}  // namespace
}  // namespace malt
