// Core runtime tests: worker launch, sharding, fault-aware barrier, SSP
// gate, cost model charging, recorder plumbing, determinism.

#include "src/core/runtime.h"

#include <gtest/gtest.h>

#include "src/comm/graph.h"

namespace malt {
namespace {

MaltOptions SmallCluster(int ranks) {
  MaltOptions options;
  options.ranks = ranks;
  options.fabric.net.latency = 1000;
  options.fabric.net.bandwidth_bytes_per_sec = 1e9;
  options.fabric.net.per_message_overhead = 0;
  options.barrier_timeout = FromSeconds(0.01);
  return options;
}

TEST(Runtime, RunsBodyOnAllRanks) {
  Malt malt(SmallCluster(5));
  std::vector<int> ran(5, 0);
  malt.Run([&](Worker& w) { ran[static_cast<size_t>(w.rank())] = 1 + w.world(); });
  for (int rank = 0; rank < 5; ++rank) {
    EXPECT_EQ(ran[static_cast<size_t>(rank)], 6);
  }
  EXPECT_EQ(malt.survivors(), 5);
}

TEST(Runtime, ShardRangeCoversAllData) {
  Malt malt(SmallCluster(4));
  std::vector<Worker::Shard> shards(4);
  malt.Run([&](Worker& w) { shards[static_cast<size_t>(w.rank())] = w.ShardRange(103); });
  size_t total = 0;
  size_t expect_begin = 0;
  for (const auto& shard : shards) {
    EXPECT_EQ(shard.begin, expect_begin);
    total += shard.size();
    expect_begin = shard.end;
  }
  EXPECT_EQ(total, 103u);
}

TEST(Runtime, ChargeFlopsAdvancesClock) {
  MaltOptions options = SmallCluster(1);
  options.cost.flops_per_sec = 1e9;
  options.cost.loop_overhead = 0;
  Malt malt(options);
  SimTime end = 0;
  malt.Run([&](Worker& w) {
    w.ChargeFlops(2e6);  // 2 ms at 1 GFLOP/s
    end = w.now();
  });
  EXPECT_EQ(end, 2 * kMillisecond);
}

TEST(Runtime, BarrierAlignsRanks) {
  Malt malt(SmallCluster(3));
  std::vector<SimTime> after(3);
  malt.Run([&](Worker& w) {
    w.ChargeSeconds(0.001 * (w.rank() + 1));
    ASSERT_TRUE(w.Barrier().ok());
    after[static_cast<size_t>(w.rank())] = w.now();
  });
  for (int rank = 0; rank < 3; ++rank) {
    EXPECT_GE(after[static_cast<size_t>(rank)], FromSeconds(0.003));
  }
}

TEST(Runtime, BarrierSurvivesKilledRank) {
  MaltOptions options = SmallCluster(3);
  Malt malt(options);
  malt.ScheduleKill(2, 0.0005);
  std::vector<int> live_after(3, -1);
  malt.Run([&](Worker& w) {
    if (w.rank() == 2) {
      w.ChargeSeconds(10);  // killed long before
      return;
    }
    w.ChargeSeconds(0.001);
    ASSERT_TRUE(w.Barrier().ok());  // times out, health-checks, completes
    live_after[static_cast<size_t>(w.rank())] = w.live_ranks();
  });
  EXPECT_EQ(live_after[0], 2);
  EXPECT_EQ(live_after[1], 2);
  EXPECT_EQ(malt.survivors(), 2);
}

TEST(Runtime, ReShardAfterFailure) {
  MaltOptions options = SmallCluster(4);
  Malt malt(options);
  malt.ScheduleKill(3, 0.0005);
  std::vector<Worker::Shard> shards(4);
  malt.Run([&](Worker& w) {
    if (w.rank() == 3) {
      w.ChargeSeconds(10);
      return;
    }
    w.ChargeSeconds(0.001);
    ASSERT_TRUE(w.Barrier().ok());
    shards[static_cast<size_t>(w.rank())] = w.ShardRange(90);  // now over 3 survivors
  });
  EXPECT_EQ(shards[0].size(), 30u);
  EXPECT_EQ(shards[1].size(), 30u);
  EXPECT_EQ(shards[2].size(), 30u);
  EXPECT_EQ(shards[2].end, 90u);
}

TEST(Runtime, SspGateStallsFastRank) {
  MaltOptions options = SmallCluster(2);
  options.sync = SyncMode::kSSP;
  options.staleness = 2;
  options.barrier_timeout = FromSeconds(0.1);
  Malt malt(options);
  std::vector<std::vector<int64_t>> gaps(2);

  malt.Run([&](Worker& w) {
    MaltVector v = w.CreateVector("w", 4);
    // Rank 0 computes 10x faster than rank 1.
    const double step_cost = w.rank() == 0 ? 0.0001 : 0.001;
    for (uint32_t iter = 1; iter <= 20; ++iter) {
      v.set_iteration(iter);
      w.ChargeSeconds(step_cost);
      ASSERT_TRUE(v.Scatter().ok());
      v.GatherAverage();
      w.SspWait(v);
      const int64_t peer = v.MinPeerIteration();
      if (peer >= 0) {
        gaps[static_cast<size_t>(w.rank())].push_back(static_cast<int64_t>(iter) - peer);
      }
    }
  });
  // The fast rank never runs more than `staleness` + 1 iterations ahead of
  // what it has seen from the slow rank (+1: the gap is measured after the
  // local iteration bump).
  for (int64_t gap : gaps[0]) {
    EXPECT_LE(gap, 3);
  }
}

TEST(Runtime, RecorderCollectsSeries) {
  Malt malt(SmallCluster(2));
  malt.Run([&](Worker& w) {
    w.recorder().Record("loss", 0.0, 1.0);
    w.recorder().Record("loss", 1.0, 0.5);
    w.recorder().Count("epochs");
  });
  EXPECT_EQ(malt.recorder(0).Get("loss").size(), 2u);
  EXPECT_EQ(malt.recorder(1).Counter("epochs"), 1.0);
}

TEST(Runtime, DataflowMatchesGraphKind) {
  MaltOptions options = SmallCluster(8);
  options.graph = GraphKind::kHalton;
  Malt malt(options);
  EXPECT_EQ(malt.dataflow().MaxOutDegree(), 3);  // floor(log2 8)
  EXPECT_TRUE(malt.dataflow().StronglyConnected());
}

TEST(Runtime, DeterministicAcrossRuns) {
  auto run_once = [] {
    Malt malt(SmallCluster(4));
    std::vector<double> finals(4);
    malt.Run([&](Worker& w) {
      MaltVector v = w.CreateVector("w", 16);
      for (int iter = 0; iter < 10; ++iter) {
        for (size_t i = 0; i < v.dim(); ++i) {
          v.data()[i] += 0.01f * static_cast<float>(w.rank() + 1);
        }
        w.ChargeFlops(1000);
        (void)v.Scatter();
        v.GatherAverage();
      }
      finals[static_cast<size_t>(w.rank())] = v.data()[0];
    });
    return finals;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Runtime, PerVectorDataflowGraphs) {
  // The paper lets every vector (e.g. every NN layer) use its own dataflow.
  MaltOptions options = SmallCluster(6);
  Malt malt(options);
  std::vector<int> got_all(6), got_halton(6);
  malt.Run([&](Worker& w) {
    MaltVector dense_layer = w.CreateVectorWithGraph("l1", 4, AllToAllGraph(6));
    MaltVector light_layer = w.CreateVectorWithGraph("l3", 4, HaltonGraph(6));
    dense_layer.data()[0] = 1.0f;
    light_layer.data()[0] = 1.0f;
    ASSERT_TRUE(dense_layer.Scatter().ok());
    ASSERT_TRUE(light_layer.Scatter().ok());
    (void)w.dstorm().Flush();
    ASSERT_TRUE(w.Barrier().ok());
    got_all[static_cast<size_t>(w.rank())] = dense_layer.GatherSum().received;
    got_halton[static_cast<size_t>(w.rank())] = light_layer.GatherSum().received;
  });
  for (int rank = 0; rank < 6; ++rank) {
    EXPECT_EQ(got_all[static_cast<size_t>(rank)], 5);     // all-to-all in-degree
    EXPECT_EQ(got_halton[static_cast<size_t>(rank)], 2);  // Halton in-degree log(6)
  }
}

TEST(Runtime, CostModelForFlops) {
  CostModel cost;
  cost.flops_per_sec = 2e9;
  cost.loop_overhead = 100;
  EXPECT_EQ(cost.ForFlops(2e9), kSecond + 100);
  EXPECT_EQ(cost.ForFlops(0), 100);
}

TEST(Runtime, ParseHelpers) {
  EXPECT_EQ(*ParseSyncMode("bsp"), SyncMode::kBSP);
  EXPECT_EQ(*ParseSyncMode("async"), SyncMode::kASP);
  EXPECT_EQ(*ParseSyncMode("ssp"), SyncMode::kSSP);
  EXPECT_FALSE(ParseSyncMode("nope").ok());
  EXPECT_EQ(*ParseGraphKind("halton"), GraphKind::kHalton);
  EXPECT_FALSE(ParseGraphKind("mesh").ok());
  EXPECT_EQ(ToString(SyncMode::kASP), "ASYNC");
  EXPECT_EQ(ToString(GraphKind::kHalton), "Halton");
}

}  // namespace
}  // namespace malt
