#include "src/base/log.h"

#include <gtest/gtest.h>

namespace malt {
namespace {

TEST(Log, LevelGate) {
  SetLogLevel(LogLevel::kWarning);
  EXPECT_FALSE(LogEnabled(LogLevel::kDebug));
  EXPECT_FALSE(LogEnabled(LogLevel::kInfo));
  EXPECT_TRUE(LogEnabled(LogLevel::kWarning));
  EXPECT_TRUE(LogEnabled(LogLevel::kError));

  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(LogEnabled(LogLevel::kDebug));

  SetLogLevel(LogLevel::kOff);
  EXPECT_FALSE(LogEnabled(LogLevel::kError));
  SetLogLevel(LogLevel::kWarning);  // restore for other tests
}

TEST(Log, StreamingMacroCompilesAndFilters) {
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  // The streamed expression must not be evaluated when filtered out.
  MALT_LOG_S(kInfo) << "never emitted " << ++evaluations;
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LogDeathTest, CheckAborts) {
  EXPECT_DEATH({ MALT_CHECK(1 + 1 == 3) << "math broke"; }, "check failed");
}

TEST(Log, CheckPassesSilently) {
  MALT_CHECK(true) << "not printed";  // must not abort
  SUCCEED();
}

}  // namespace
}  // namespace malt
