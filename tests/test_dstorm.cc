// dstorm tests: collective segment creation, scatter/gather delivery over
// various dataflow graphs, overwrite-on-full, torn-write protection,
// per-sender freshness, barrier, and group-membership changes.

#include "src/dstorm/dstorm.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "src/comm/graph.h"
#include "src/simnet/fabric.h"

namespace malt {
namespace {

FabricOptions FastNet() {
  FabricOptions opts;
  opts.net.latency = 1000;
  opts.net.bandwidth_bytes_per_sec = 1e9;
  opts.net.per_message_overhead = 0;
  return opts;
}

std::span<const std::byte> AsBytes(const void* p, size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

// Test harness: runs `body(rank, dstorm, process)` on every node.
struct DstormCluster {
  explicit DstormCluster(int n, FabricOptions opts = FastNet())
      : engine(), fabric(engine, n, opts), domain(engine, fabric, n) {}

  void Run(const std::function<void(int, Dstorm&, Process&)>& body) {
    const int n = domain.size();
    for (int rank = 0; rank < n; ++rank) {
      engine.AddProcess("rank" + std::to_string(rank), [this, rank, body](Process& p) {
        Dstorm& d = domain.node(rank);
        d.Bind(p);
        body(rank, d, p);
      });
    }
    engine.Run();
  }

  Engine engine;
  Fabric fabric;
  DstormDomain domain;
};

TEST(Dstorm, ScatterGatherAllToAll) {
  const int n = 4;
  DstormCluster cluster(n);
  std::vector<std::map<int, double>> received(n);  // [rank][sender] -> value

  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(double);
    opts.graph = AllToAllGraph(n);
    const SegmentId seg = d.CreateSegment(opts);

    const double mine = 100.0 + rank;
    ASSERT_TRUE(d.Scatter(seg, AsBytes(&mine, sizeof(mine)), 1).ok());
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.Barrier().ok());  // everyone's writes have landed

    d.Gather(seg, [&](const RecvObject& obj) {
      double v;
      ASSERT_EQ(obj.bytes.size(), sizeof(v));
      std::memcpy(&v, obj.bytes.data(), sizeof(v));
      received[static_cast<size_t>(rank)][obj.sender] = v;
      EXPECT_EQ(obj.iter, 1u);
    });
    (void)p;
  });

  for (int rank = 0; rank < n; ++rank) {
    EXPECT_EQ(received[static_cast<size_t>(rank)].size(), static_cast<size_t>(n - 1));
    for (int sender = 0; sender < n; ++sender) {
      if (sender == rank) {
        continue;
      }
      ASSERT_TRUE(received[static_cast<size_t>(rank)].count(sender)) << rank << "<-" << sender;
      EXPECT_DOUBLE_EQ(received[static_cast<size_t>(rank)][sender], 100.0 + sender);
    }
  }
}

TEST(Dstorm, GatherOnlySeesInNeighbors) {
  const int n = 4;
  DstormCluster cluster(n);
  std::vector<std::vector<int>> senders_seen(n);

  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = RingGraph(n);  // i -> i+1
    const SegmentId seg = d.CreateSegment(opts);
    ASSERT_TRUE(d.Scatter(seg, AsBytes(&rank, sizeof(rank)), 0).ok());
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.Barrier().ok());
    d.Gather(seg, [&](const RecvObject& obj) {
      senders_seen[static_cast<size_t>(rank)].push_back(obj.sender);
    });
  });

  for (int rank = 0; rank < n; ++rank) {
    ASSERT_EQ(senders_seen[static_cast<size_t>(rank)].size(), 1u);
    EXPECT_EQ(senders_seen[static_cast<size_t>(rank)][0], (rank + n - 1) % n);
  }
}

TEST(Dstorm, FreshnessNoDoubleConsume) {
  DstormCluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = AllToAllGraph(2);
    const SegmentId seg = d.CreateSegment(opts);
    ASSERT_TRUE(d.Scatter(seg, AsBytes(&rank, sizeof(rank)), 7).ok());
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.Barrier().ok());
    EXPECT_EQ(d.Gather(seg, [](const RecvObject&) {}), 1);
    EXPECT_EQ(d.Gather(seg, [](const RecvObject&) {}), 0);  // already consumed
  });
}

TEST(Dstorm, OverwriteOnFullKeepsNewest) {
  // Sender pushes 5 objects into a depth-2 queue before the receiver looks:
  // only the newest 2 survive, oldest-first order.
  DstormCluster cluster(2);
  std::vector<int> values;
  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = RingGraph(2);
    opts.queue_depth = 2;
    const SegmentId seg = d.CreateSegment(opts);
    if (rank == 0) {
      for (int i = 1; i <= 5; ++i) {
        ASSERT_TRUE(d.Scatter(seg, AsBytes(&i, sizeof(i)), static_cast<uint32_t>(i)).ok());
        ASSERT_TRUE(d.Flush().ok());
      }
      ASSERT_TRUE(d.Barrier().ok());
    } else {
      ASSERT_TRUE(d.Barrier().ok());
      d.Gather(seg, [&](const RecvObject& obj) {
        int v;
        std::memcpy(&v, obj.bytes.data(), sizeof(v));
        values.push_back(v);
      });
      (void)p;
    }
  });
  ASSERT_EQ(values.size(), 2u);
  EXPECT_EQ(values[0], 4);
  EXPECT_EQ(values[1], 5);
}

TEST(Dstorm, PeerIterationTracksNewestVisible) {
  DstormCluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = RingGraph(2);
    const SegmentId seg = d.CreateSegment(opts);
    if (rank == 0) {
      EXPECT_EQ(d.PeerIteration(seg, 1), -1);  // nothing yet
      int v = 0;
      ASSERT_TRUE(d.Scatter(seg, AsBytes(&v, sizeof(v)), 41).ok());
      ASSERT_TRUE(d.Flush().ok());
      ASSERT_TRUE(d.Barrier().ok());
      EXPECT_EQ(d.PeerIteration(seg, 1), 99);
    } else {
      int v = 1;
      ASSERT_TRUE(d.Scatter(seg, AsBytes(&v, sizeof(v)), 99).ok());
      ASSERT_TRUE(d.Flush().ok());
      ASSERT_TRUE(d.Barrier().ok());
      EXPECT_EQ(d.PeerIteration(seg, 0), 41);
    }
  });
}

TEST(Dstorm, TornWriteSkippedThenConsumed) {
  // With torn_writes enabled the payload lands in two halves; a gather in
  // between must skip the slot (mismatched sequence stamps), and a later
  // gather sees the complete object.
  FabricOptions opts = FastNet();
  opts.torn_writes = true;
  opts.net.latency = 1'000'000;  // big gap between the halves
  DstormCluster cluster(2, opts);
  int consumed_mid = -1;
  int consumed_late = -1;

  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    SegmentOptions seg_opts;
    seg_opts.obj_bytes = 64;
    seg_opts.graph = RingGraph(2);
    const SegmentId seg = d.CreateSegment(seg_opts);
    if (rank == 0) {
      std::vector<std::byte> payload(64, std::byte{0xAB});
      ASSERT_TRUE(d.Scatter(seg, payload, 1).ok());
      p.SleepUntil(10'000'000);
    } else {
      // First half arrives at ~1.0ms; second at ~2.0ms. Sample at 1.5ms.
      p.SleepUntil(1'500'000);
      consumed_mid = d.Gather(seg, [](const RecvObject&) {});
      p.SleepUntil(5'000'000);
      consumed_late = d.Gather(seg, [&](const RecvObject& obj) {
        EXPECT_EQ(obj.bytes[0], std::byte{0xAB});
        EXPECT_EQ(obj.bytes[63], std::byte{0xAB});
      });
    }
  });
  EXPECT_EQ(consumed_mid, 0);
  EXPECT_EQ(consumed_late, 1);
  // The torn skip is visible in rank 1's telemetry registry (shared through
  // the fabric's fallback domain).
  const MetricRegistry& metrics = cluster.fabric.telemetry().rank(1).metrics;
  EXPECT_EQ(metrics.CounterValue("dstorm.torn_slots_skipped"), 1);
  EXPECT_EQ(metrics.CounterValue("dstorm.objects_folded"), 1);
}

TEST(Dstorm, BarrierSynchronizesClocks) {
  const int n = 3;
  DstormCluster cluster(n);
  std::vector<SimTime> after(n);
  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    SegmentOptions opts;
    opts.obj_bytes = 8;
    opts.graph = AllToAllGraph(n);
    d.CreateSegment(opts);
    p.Advance(1000 * (rank + 1));  // ranks arrive at different times
    ASSERT_TRUE(d.Barrier().ok());
    after[static_cast<size_t>(rank)] = p.now();
  });
  // No rank may leave the barrier before the slowest arrived.
  for (int rank = 0; rank < n; ++rank) {
    EXPECT_GE(after[static_cast<size_t>(rank)], 3000);
  }
}

TEST(Dstorm, BarrierTimeoutOnDeadPeer) {
  DstormCluster cluster(2);
  Status barrier_status;
  cluster.engine.ScheduleKill(1, 500);
  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    if (rank == 1) {
      p.Advance(1'000'000);  // killed long before this finishes
      return;
    }
    barrier_status = d.Barrier(FromSeconds(0.01));
  });
  EXPECT_EQ(barrier_status.code(), StatusCode::kDeadlineExceeded);
}

TEST(Dstorm, BarrierProceedsAfterRemoval) {
  DstormCluster cluster(3);
  cluster.engine.ScheduleKill(2, 100);
  std::vector<bool> completed(3, false);
  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    if (rank == 2) {
      p.Advance(1'000'000);
      return;
    }
    d.RemoveFromGroup(2);
    ASSERT_TRUE(d.Barrier().ok());
    completed[static_cast<size_t>(rank)] = true;
  });
  EXPECT_TRUE(completed[0]);
  EXPECT_TRUE(completed[1]);
}

TEST(Dstorm, ScatterSkipsRemovedMembers) {
  DstormCluster cluster(3);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = AllToAllGraph(3);
    const SegmentId seg = d.CreateSegment(opts);
    d.RemoveFromGroup(2);
    if (rank == 2) {
      return;
    }
    ASSERT_TRUE(d.Scatter(seg, AsBytes(&rank, sizeof(rank)), 0).ok());
    ASSERT_TRUE(d.Flush().ok());
  });
  // Node 2 received nothing.
  EXPECT_EQ(cluster.fabric.stats().RxBytes(2), 0);
}

TEST(Dstorm, ProbePeerDetectsDeath) {
  DstormCluster cluster(2);
  // Kill node 1 at 1 ms — after the first probe completes (a probe's RTT is
  // a few microseconds), before the second.
  cluster.engine.ScheduleKill(1, 1'000'000);
  bool probe_before = false;
  bool probe_after = true;
  cluster.Run([&](int rank, Dstorm& d, Process& p) {
    if (rank == 1) {
      p.Advance(10'000'000);
      return;
    }
    probe_before = d.ProbePeer(1);  // at t=0: still alive
    p.SleepUntil(2'000'000);
    probe_after = d.ProbePeer(1);
  });
  EXPECT_TRUE(probe_before);
  EXPECT_FALSE(probe_after);
}

TEST(Dstorm, SparsePayloadSmallerThanObjBytes) {
  DstormCluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = 256;
    opts.graph = AllToAllGraph(2);
    const SegmentId seg = d.CreateSegment(opts);
    std::vector<std::byte> small(10, std::byte{0x5A});
    ASSERT_TRUE(d.Scatter(seg, small, 0).ok());
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.Barrier().ok());
    d.Gather(seg, [&](const RecvObject& obj) {
      EXPECT_EQ(obj.bytes.size(), 10u);  // actual length, not capacity
      EXPECT_EQ(obj.bytes[9], std::byte{0x5A});
    });
    (void)rank;
  });
}

TEST(Dstorm, OversizedPayloadRejected) {
  DstormCluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = 8;
    opts.graph = AllToAllGraph(2);
    const SegmentId seg = d.CreateSegment(opts);
    std::vector<std::byte> big(16);
    if (rank == 0) {
      Status s = d.Scatter(seg, big, 0);
      EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
    }
  });
}

TEST(Dstorm, MultipleSegmentsIndependent) {
  DstormCluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions a;
    a.obj_bytes = sizeof(int);
    a.graph = AllToAllGraph(2);
    SegmentOptions b;
    b.obj_bytes = sizeof(double);
    b.graph = AllToAllGraph(2);
    const SegmentId seg_a = d.CreateSegment(a);
    const SegmentId seg_b = d.CreateSegment(b);
    ASSERT_NE(seg_a, seg_b);
    const int iv = rank + 10;
    const double dv = rank + 0.5;
    ASSERT_TRUE(d.Scatter(seg_a, AsBytes(&iv, sizeof(iv)), 0).ok());
    ASSERT_TRUE(d.Scatter(seg_b, AsBytes(&dv, sizeof(dv)), 0).ok());
    ASSERT_TRUE(d.Flush().ok());
    ASSERT_TRUE(d.Barrier().ok());
    int got_int = -1;
    double got_double = -1;
    d.Gather(seg_a, [&](const RecvObject& o) { std::memcpy(&got_int, o.bytes.data(), 4); });
    d.Gather(seg_b, [&](const RecvObject& o) { std::memcpy(&got_double, o.bytes.data(), 8); });
    EXPECT_EQ(got_int, (1 - rank) + 10);
    EXPECT_DOUBLE_EQ(got_double, (1 - rank) + 0.5);
  });
}

TEST(Dstorm, FinishedRankDoesNotBlockBarriers) {
  // A rank that completes training publishes an "infinite" barrier counter;
  // peers running more rounds must pass their remaining barriers without it.
  DstormCluster cluster(3);
  std::vector<int> rounds_done(3, 0);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    const int my_rounds = rank == 0 ? 2 : 5;  // rank 0 finishes early
    for (int round = 0; round < my_rounds; ++round) {
      ASSERT_TRUE(d.Barrier().ok());
      ++rounds_done[static_cast<size_t>(rank)];
    }
    d.FinishBarriers();
  });
  EXPECT_EQ(rounds_done[0], 2);
  EXPECT_EQ(rounds_done[1], 5);
  EXPECT_EQ(rounds_done[2], 5);
}

TEST(Dstorm, ScatterToSubset) {
  const int n = 4;
  DstormCluster cluster(n);
  std::vector<int> gathered(n, 0);
  cluster.Run([&](int rank, Dstorm& d, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = AllToAllGraph(n);
    const SegmentId seg = d.CreateSegment(opts);
    if (rank == 0) {
      const std::vector<int> dsts = {1, 3};  // fine-grained dataflow control
      ASSERT_TRUE(d.ScatterTo(seg, dsts, AsBytes(&rank, sizeof(rank)), 0).ok());
      ASSERT_TRUE(d.Flush().ok());
    }
    ASSERT_TRUE(d.Barrier().ok());
    gathered[static_cast<size_t>(rank)] = d.Gather(seg, [](const RecvObject&) {});
  });
  EXPECT_EQ(gathered[0], 0);
  EXPECT_EQ(gathered[1], 1);
  EXPECT_EQ(gathered[2], 0);
  EXPECT_EQ(gathered[3], 1);
}

}  // namespace
}  // namespace malt
