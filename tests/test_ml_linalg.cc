#include "src/ml/linalg.h"

#include <gtest/gtest.h>

#include <vector>

namespace malt {
namespace {

TEST(Linalg, Dot) {
  const std::vector<float> a = {1, 2, 3};
  const std::vector<float> b = {4, 5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b), 32.0);
}

TEST(Linalg, SparseDot) {
  std::vector<float> w(10, 0.0f);
  w[2] = 2.0f;
  w[7] = -1.0f;
  const std::vector<uint32_t> idx = {2, 5, 7};
  const std::vector<float> val = {3.0f, 100.0f, 4.0f};
  // w[5] is 0, so the 100 contributes nothing.
  EXPECT_DOUBLE_EQ(SparseDot(w, idx, val), 2.0 * 3.0 - 1.0 * 4.0);
}

TEST(Linalg, Axpy) {
  const std::vector<float> x = {1, 2};
  std::vector<float> y = {10, 20};
  Axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(Linalg, SparseAxpy) {
  std::vector<float> y(5, 1.0f);
  const std::vector<uint32_t> idx = {0, 4};
  const std::vector<float> val = {1.0f, 2.0f};
  SparseAxpy(3.0f, idx, val, y);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_FLOAT_EQ(y[1], 1.0f);
  EXPECT_FLOAT_EQ(y[4], 7.0f);
}

TEST(Linalg, ScaleAndNormAndFill) {
  std::vector<float> x = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredNorm(x), 25.0);
  Scale(x, 2.0f);
  EXPECT_FLOAT_EQ(x[0], 6.0f);
  EXPECT_DOUBLE_EQ(SquaredNorm(x), 100.0);
  Fill(x, 0.5f);
  EXPECT_FLOAT_EQ(x[1], 0.5f);
}

TEST(Linalg, EmptySpansAreSafe) {
  std::vector<float> empty;
  EXPECT_DOUBLE_EQ(Dot(empty, empty), 0.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(empty), 0.0);
}

}  // namespace
}  // namespace malt
