#include "src/base/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace malt {
namespace {

TEST(SplitMix64, DeterministicAndDistinct) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    seen.insert(va);
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7);
  Xoshiro256 b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a.Next() == b.Next());
  }
  EXPECT_LT(same, 3);
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro256, BoundedIsUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.NextBounded(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), n / 10.0, 5.0 * std::sqrt(n / 10.0));
  }
}

TEST(Xoshiro256, BoundedRespectsBound) {
  Xoshiro256 rng(5);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Xoshiro256, GaussianMoments) {
  Xoshiro256 rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Xoshiro256, ShuffleIsPermutation) {
  Xoshiro256 rng(17);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(v.data(), v.size());
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

TEST(Xoshiro256, ShuffleDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5};
  std::vector<int> b = a;
  Xoshiro256 ra(99);
  Xoshiro256 rb(99);
  ra.Shuffle(a.data(), a.size());
  rb.Shuffle(b.data(), b.size());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace malt
