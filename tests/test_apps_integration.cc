// End-to-end application tests: distributed SVM / MF / NN training converges
// under every sync mode and dataflow, is deterministic, survives failures,
// and the traffic accounting matches the configuration.

#include <gtest/gtest.h>

#include "src/apps/mf_app.h"
#include "src/apps/nn_app.h"
#include "src/apps/svm_app.h"
#include "src/ml/metrics.h"
#include "src/ml/dataset.h"

namespace malt {
namespace {

SparseDataset SmallSvmData() {
  ClassificationConfig config;
  config.dim = 2000;
  config.train_n = 12000;
  config.test_n = 1000;
  config.avg_nnz = 40;
  config.margin = 0.3;
  config.label_noise = 0.02;
  return MakeClassification(config);
}

struct SvmModeCase {
  SyncMode sync;
  GraphKind graph;
  SvmAppConfig::Average average;
};

class SvmModeSweep : public ::testing::TestWithParam<SvmModeCase> {};

TEST_P(SvmModeSweep, ConvergesUnderModeAndGraph) {
  const SvmModeCase test_case = GetParam();
  static const SparseDataset data = SmallSvmData();

  SvmAppConfig config;
  config.data = &data;
  config.epochs = 6;
  config.cb_size = 500;
  config.average = test_case.average;
  config.evals_per_epoch = 1;

  MaltOptions options;
  options.ranks = 6;
  options.sync = test_case.sync;
  options.graph = test_case.graph;
  SvmRunResult result = RunSvm(options, config);

  EXPECT_LT(result.final_loss, 0.62)
      << ToString(test_case.sync) << "/" << ToString(test_case.graph);
  EXPECT_GT(result.final_accuracy, 0.72);
  EXPECT_GT(result.total_bytes, 0);
  EXPECT_GT(result.seconds_total, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndGraphs, SvmModeSweep,
    ::testing::Values(
        SvmModeCase{SyncMode::kBSP, GraphKind::kAll, SvmAppConfig::Average::kGradient},
        SvmModeCase{SyncMode::kBSP, GraphKind::kHalton, SvmAppConfig::Average::kGradient},
        SvmModeCase{SyncMode::kASP, GraphKind::kAll, SvmAppConfig::Average::kGradient},
        SvmModeCase{SyncMode::kASP, GraphKind::kHalton, SvmAppConfig::Average::kModel},
        SvmModeCase{SyncMode::kSSP, GraphKind::kAll, SvmAppConfig::Average::kGradient},
        SvmModeCase{SyncMode::kBSP, GraphKind::kAll, SvmAppConfig::Average::kModel},
        SvmModeCase{SyncMode::kBSP, GraphKind::kRing, SvmAppConfig::Average::kModel}));

TEST(SvmApp, SingleRankMatchesSerialSgd) {
  // A 1-rank "distributed" run is serial SVM-SGD: no traffic, and the loss
  // matches a handmade serial loop to float exactness.
  static const SparseDataset data = SmallSvmData();
  SvmAppConfig config;
  config.data = &data;
  config.epochs = 2;
  config.cb_size = 500;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 1;
  SvmRunResult result = RunSvm(options, config);

  std::vector<float> w(data.dim, 0.0f);
  SvmSgd svm(w, config.svm);
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (const SparseExample& ex : data.train) {
      svm.TrainExample(ex);
    }
  }
  // Gradient mode reconstructs w as snapshot + (w - snapshot): float
  // round-trips leave ~1 ulp differences, so compare to tolerance.
  EXPECT_NEAR(result.final_loss, MeanHingeLoss(w, data.test), 1e-6);
  EXPECT_EQ(result.total_bytes, 0);  // all-to-all of one rank has no edges
}

TEST(SvmApp, DeterministicAcrossRuns) {
  static const SparseDataset data = SmallSvmData();
  SvmAppConfig config;
  config.data = &data;
  config.epochs = 3;
  config.cb_size = 700;
  config.evals_per_epoch = 2;
  auto run = [&] {
    MaltOptions options;
    options.ranks = 5;
    options.sync = SyncMode::kASP;  // even async is deterministic in the simulator
    options.graph = GraphKind::kHalton;
    return RunSvm(options, config);
  };
  const SvmRunResult a = run();
  const SvmRunResult b = run();
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
  EXPECT_EQ(a.seconds_total, b.seconds_total);
  ASSERT_EQ(a.loss_vs_time.size(), b.loss_vs_time.size());
  EXPECT_EQ(a.loss_vs_time.y, b.loss_vs_time.y);
}

TEST(SvmApp, SparseGradientsReduceTraffic) {
  ClassificationConfig dc;
  dc.dim = 50000;
  dc.train_n = 4000;
  dc.test_n = 200;
  dc.avg_nnz = 50;
  dc.feature_skew = 3.0;
  const SparseDataset data = MakeClassification(dc);

  SvmAppConfig config;
  config.data = &data;
  config.epochs = 2;
  config.cb_size = 250;
  config.evals_per_epoch = 1;
  auto run = [&](bool sparse) {
    SvmAppConfig c = config;
    c.sparse_gradients = sparse;
    MaltOptions options;
    options.ranks = 4;
    options.sync = SyncMode::kBSP;
    return RunSvm(options, c);
  };
  const SvmRunResult dense = run(false);
  const SvmRunResult sparse = run(true);
  EXPECT_LT(sparse.total_bytes, dense.total_bytes / 2)
      << "sparse deltas should be far smaller than dense 50k-float models";
  EXPECT_NEAR(sparse.final_loss, dense.final_loss, 0.08);
}

TEST(SvmApp, SurvivesMidTrainingFailure) {
  static const SparseDataset data = SmallSvmData();
  SvmAppConfig config;
  config.data = &data;
  config.epochs = 8;
  config.cb_size = 500;
  config.average = SvmAppConfig::Average::kModel;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 6;
  options.sync = SyncMode::kBSP;
  options.barrier_timeout = FromSeconds(0.002);
  options.fault.recovery_cost = FromSeconds(0.001);
  Malt malt(options);
  malt.ScheduleKill(4, 0.004);
  SvmRunResult result = RunDistributedSvm(malt, config);
  EXPECT_EQ(malt.survivors(), 5);
  EXPECT_LT(result.final_loss, 0.65);
  EXPECT_GT(result.final_accuracy, 0.70);
}

TEST(MfApp, ConvergesAsync) {
  const RatingsDataset data = MakeRatings(RatingsConfig{});
  MfAppConfig config;
  config.data = &data;
  config.epochs = 6;
  config.cb_size = 1000;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 4;
  options.sync = SyncMode::kASP;
  MfRunResult result = RunMf(options, config);
  EXPECT_LT(result.final_rmse, 0.4);
  EXPECT_GT(result.total_bytes, 0);
}

TEST(MfApp, SortByItemHelpsOrAtLeastConverges) {
  const RatingsDataset data = MakeRatings(RatingsConfig{});
  MfAppConfig config;
  config.data = &data;
  config.epochs = 4;
  config.cb_size = 500;
  config.evals_per_epoch = 1;
  auto run = [&](bool sorted) {
    MfAppConfig c = config;
    c.sort_by_item = sorted;
    MaltOptions options;
    options.ranks = 2;
    options.sync = SyncMode::kASP;
    return RunMf(options, c);
  };
  EXPECT_LT(run(true).final_rmse, 0.5);
  EXPECT_LT(run(false).final_rmse, 0.6);
}

TEST(NnApp, InterleavedMixingBeatsPlainModelAveraging) {
  // Paper §4.1.3: non-convex training needs gradient sync interleaved with
  // whole-model sync. At 2 ranks the interleaved scheme should clearly
  // outperform per-round model averaging for the same budget.
  ClassificationConfig dc = KddLike();
  dc.train_n = 24000;
  dc.test_n = 800;
  const SparseDataset data = MakeClassification(dc);
  auto run = [&](NnAppConfig::Mixing mixing) {
    NnAppConfig config;
    config.data = &data;
    config.epochs = 4;
    config.cb_size = 375;
    config.mlp.hidden1 = 32;
    config.mlp.hidden2 = 16;
    config.mixing = mixing;
    config.model_sync_every = 4;
    config.evals_per_epoch = 1;
    MaltOptions options;
    options.ranks = 2;
    options.sync = SyncMode::kBSP;
    return RunNn(options, config);
  };
  const NnRunResult interleaved = run(NnAppConfig::Mixing::kInterleaved);
  const NnRunResult averaged = run(NnAppConfig::Mixing::kModelAvg);
  EXPECT_GT(interleaved.final_auc, averaged.final_auc + 0.03);
}

TEST(NnApp, ParallelTrainingImprovesAuc) {
  ClassificationConfig dc = KddLike();
  dc.train_n = 8000;
  dc.test_n = 800;
  dc.label_noise = 0.03;
  dc.margin = 0.2;
  const SparseDataset data = MakeClassification(dc);
  NnAppConfig config;
  config.data = &data;
  config.epochs = 12;
  config.cb_size = 250;
  config.mlp.hidden1 = 24;
  config.mlp.hidden2 = 12;
  config.mlp.eta = 0.08f;  // linear-scaling rule for 4 replicas
  config.mixing = NnAppConfig::Mixing::kModelAvg;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 4;
  options.sync = SyncMode::kBSP;
  NnRunResult result = RunNn(options, config);
  EXPECT_GT(result.final_auc, 0.65);
  EXPECT_LT(result.final_logloss, 0.72);
}

}  // namespace
}  // namespace malt
