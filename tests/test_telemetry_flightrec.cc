// Crash flight recorder (src/telemetry/flightrec.h): postmortem bundles for
// abnormal run endings. Covers the NDJSON record shape, lazy file creation
// (a clean run leaves nothing), multi-dump appends, the pre-serialized
// signal snapshot, and the runtime-wired triggers — a forced checker
// violation and a watchdog/fail-stop kill must each leave a complete bundle
// on BOTH transports. The shmem cases run real concurrent threads
// (tools/check.sh re-runs this suite under ThreadSanitizer).

#include "src/telemetry/flightrec.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/runtime.h"

namespace malt {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool Exists(const std::string& path) { return std::ifstream(path).good(); }

std::vector<std::string> Lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      lines.push_back(line);
    }
  }
  return lines;
}

TEST(FlightRecorder, LazyFileAndAppendingDumps) {
  const std::string path = testing::TempDir() + "fr_unit.ndjson";
  std::remove(path.c_str());
  {
    FlightRecorder fr(path);
    int renders = 0;
    fr.AddSection("probe", [&renders](std::string* out) {
      ++renders;
      out->append("{\"calls\":");
      out->append(std::to_string(renders));
      out->push_back('}');
    });
    EXPECT_FALSE(Exists(path)) << "no dump yet: the bundle must not exist";
    EXPECT_TRUE(fr.Dump("first", 100));
    EXPECT_TRUE(fr.Dump("second", 200));
    EXPECT_EQ(fr.dumps(), 2);
  }
  const std::vector<std::string> lines = Lines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"reason\":\"first\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ts_ns\":100"), std::string::npos);
  EXPECT_NE(lines[0].find("\"probe\":{\"calls\":1}"), std::string::npos);
  EXPECT_NE(lines[1].find("\"reason\":\"second\""), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST(FlightRecorder, SnapshotIsPreSerializedForTheSignalPath) {
  const std::string path = testing::TempDir() + "fr_snap.ndjson";
  std::remove(path.c_str());
  FlightRecorder fr(path);
  fr.AddSection("state", [](std::string* out) { out->append("\"ok\""); });
  fr.RefreshSnapshot(42);
  // Dump still renders live (snapshot is only for the handler), and the
  // snapshot machinery must not have started the file.
  EXPECT_FALSE(Exists(path));
  EXPECT_TRUE(fr.Dump("check", 43));
  EXPECT_NE(Slurp(path).find("\"state\":\"ok\""), std::string::npos);
}

// A forced protocol violation must produce a complete bundle via the same
// driver path malt_run uses (DumpPostmortem before exit 3).
void RunCheckerViolationBundle(TransportKind transport) {
  const std::string path = testing::TempDir() + "fr_check_" +
                           (transport == TransportKind::kSim ? "sim" : "shmem") + ".ndjson";
  std::remove(path.c_str());
  MaltOptions options;
  options.transport = transport;
  options.ranks = 2;
  options.check = CheckLevel::kCheap;
  options.telemetry.postmortem_path = path;
  Malt malt(options);
  malt.Run([](Worker& w) {
    MaltVector v = w.CreateVector("model", 16);
    w.BeginEpoch(0);
    ASSERT_TRUE(v.Scatter().ok());
    ASSERT_TRUE(w.Barrier().ok());
  });
  EXPECT_FALSE(Exists(path)) << "clean run must not dump";
  malt.checker().ReportViolation("test-forced", 0, 7, "planted violation");
  malt.DumpPostmortem("checker_violation");
  ASSERT_TRUE(Exists(path));
  const std::string bundle = Slurp(path);
  EXPECT_NE(bundle.find("\"reason\":\"checker_violation\""), std::string::npos);
  for (const char* section :
       {"\"options\":", "\"metrics\":", "\"watermarks\":", "\"critical_paths\":",
        "\"checker\":", "\"vclocks\":", "\"trace_tail\":"}) {
    EXPECT_NE(bundle.find(section), std::string::npos) << section;
  }
  EXPECT_NE(bundle.find("test-forced"), std::string::npos)
      << "checker section must carry the violation";
}

TEST(FlightRecorderEndToEnd, CheckerViolationBundleUnderSim) {
  RunCheckerViolationBundle(TransportKind::kSim);
}

TEST(FlightRecorderEndToEnd, CheckerViolationBundleUnderShmem) {
  RunCheckerViolationBundle(TransportKind::kShmem);
}

// A mid-run kill must leave a bundle without any driver involvement: the
// shmem watchdog dumps at delivery, the sim runtime at run end; both paths
// also record the death in the health watermarks.
void RunKillBundle(TransportKind transport) {
  const std::string path = testing::TempDir() + "fr_kill_" +
                           (transport == TransportKind::kSim ? "sim" : "shmem") + ".ndjson";
  std::remove(path.c_str());
  MaltOptions options;
  options.transport = transport;
  options.ranks = 4;
  options.telemetry.postmortem_path = path;
  Malt malt(options);
  malt.ScheduleKill(1, 0.02);
  malt.Run([&](Worker& w) {
    MaltVector v = w.CreateVector("model", 16);
    for (int epoch = 0; epoch < 8; ++epoch) {
      w.BeginEpoch(epoch);
      w.InjectDelay(0.01);  // real wall time under shmem, so the kill lands
      ASSERT_TRUE(v.Scatter().ok());
      ASSERT_TRUE(w.Barrier().ok());
    }
  });
  EXPECT_EQ(malt.survivors(), 3);
  ASSERT_TRUE(Exists(path));
  const std::string bundle = Slurp(path);
  EXPECT_NE(bundle.find("\"reason\":\"rank_death\""), std::string::npos);
  if (transport == TransportKind::kShmem) {
    EXPECT_NE(bundle.find("\"reason\":\"watchdog_kill\""), std::string::npos);
  }
  for (const char* section : {"\"options\":", "\"metrics\":", "\"watermarks\":", "\"vclocks\":"}) {
    EXPECT_NE(bundle.find(section), std::string::npos) << section;
  }
  // The last record's watermarks must mark rank 1 dead.
  const std::vector<std::string> lines = Lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"rank\":1,"), std::string::npos);
  EXPECT_NE(lines.back().find("\"dead\":1"), std::string::npos);
}

TEST(FlightRecorderEndToEnd, KillLeavesBundleUnderSim) { RunKillBundle(TransportKind::kSim); }

TEST(FlightRecorderEndToEnd, KillLeavesBundleUnderShmem) {
  RunKillBundle(TransportKind::kShmem);
}

}  // namespace
}  // namespace malt
