// Parameter-server baseline tests: protocol liveness, convergence, the
// wait-time property (workers block, MALT peers don't), traffic shape, and
// the MR-SVM configuration helper.

#include <gtest/gtest.h>

#include "src/apps/svm_app.h"
#include "src/baselines/mr_svm.h"
#include "src/baselines/param_server.h"
#include "src/ml/dataset.h"

namespace malt {
namespace {

SparseDataset PsData() {
  ClassificationConfig config;
  config.dim = 3000;
  config.train_n = 8000;
  config.test_n = 500;
  config.avg_nnz = 40;
  config.margin = 0.3;
  return MakeClassification(config);
}

TEST(ParamServer, GradientPushConverges) {
  const SparseDataset data = PsData();
  PsSvmConfig config;
  config.data = &data;
  config.epochs = 4;
  config.cb_size = 500;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 5;  // server + 4 workers
  PsRunResult result = RunPsSvm(options, config);
  EXPECT_LT(result.final_loss, 0.7);
  EXPECT_GT(result.final_accuracy, 0.65);
  EXPECT_GT(result.seconds_total, 0.0);
}

TEST(ParamServer, ModelPushConverges) {
  const SparseDataset data = PsData();
  PsSvmConfig config;
  config.data = &data;
  config.epochs = 4;
  config.cb_size = 500;
  config.push = PsSvmConfig::Push::kModel;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 5;
  PsRunResult result = RunPsSvm(options, config);
  EXPECT_LT(result.final_loss, 0.75);
}

TEST(ParamServer, WorkersWaitMaltDoesNot) {
  const SparseDataset data = PsData();
  PsSvmConfig ps_config;
  ps_config.data = &data;
  ps_config.epochs = 3;
  ps_config.cb_size = 500;
  ps_config.evals_per_epoch = 1;
  MaltOptions ps_options;
  ps_options.ranks = 5;
  const PsRunResult ps = RunPsSvm(ps_options, ps_config);
  EXPECT_GT(ps.worker_wait_seconds, 0.0) << "PS clients must block for the pulled model";

  SvmAppConfig malt_config;
  malt_config.data = &data;
  malt_config.epochs = 3;
  malt_config.cb_size = 500;
  malt_config.evals_per_epoch = 1;
  MaltOptions malt_options;
  malt_options.ranks = 4;
  malt_options.sync = SyncMode::kASP;
  malt_options.graph = GraphKind::kHalton;
  const SvmRunResult malt = RunSvm(malt_options, malt_config);
  EXPECT_EQ(malt.time_barrier, 0.0) << "async MALT replicas never block";
}

TEST(ParamServer, PullsWholeModelsTrafficShape) {
  // Each worker pull is a whole dense model regardless of update sparsity.
  const SparseDataset data = PsData();
  PsSvmConfig config;
  config.data = &data;
  config.epochs = 2;
  config.cb_size = 500;
  config.sparse_push = true;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 3;  // 2 workers
  const PsRunResult result = RunPsSvm(options, config);
  // 2 epochs x 8000 examples / cb 500 = 32 pushes; each reply is a
  // 3000-float model (12 KB) plus slot framing.
  const int64_t min_model_bytes = 32LL * 3000 * 4;
  EXPECT_GT(result.total_bytes, min_model_bytes);
}

TEST(ParamServer, RequiresAtLeastOneWorker) {
  const SparseDataset data = PsData();
  PsSvmConfig config;
  config.data = &data;
  MaltOptions options;
  options.ranks = 1;
  EXPECT_DEATH((void)RunPsSvm(options, config), "server");
}

TEST(MrSvm, ConfigIsOneRoundPerEpoch) {
  const SparseDataset data = PsData();
  const SvmAppConfig config = MrSvmConfig(data, /*ranks=*/4, /*epochs=*/3);
  EXPECT_EQ(config.average, SvmAppConfig::Average::kModel);
  EXPECT_GT(config.cb_size, static_cast<int>(data.train.size() / 4));
  EXPECT_EQ(config.epochs, 3);
}

TEST(MrSvm, RunsAndConverges) {
  const SparseDataset data = PsData();
  SvmAppConfig config = MrSvmConfig(data, 4, 6);
  config.data = &data;
  config.evals_per_epoch = 1;
  MaltOptions options;
  options.ranks = 4;
  options.sync = SyncMode::kBSP;
  const SvmRunResult result = RunSvm(options, config);
  EXPECT_LT(result.final_loss, 0.75);
  // One-shot averaging: communication rounds = epochs, so traffic is tiny
  // compared with a cb=250 run.
  SvmAppConfig frequent = config;
  frequent.cb_size = 250;
  MaltOptions options2;
  options2.ranks = 4;
  options2.sync = SyncMode::kBSP;
  const SvmRunResult frequent_result = RunSvm(options2, frequent);
  EXPECT_LT(result.total_bytes, frequent_result.total_bytes / 4);
}

}  // namespace
}  // namespace malt
