#include "src/base/flags.h"

#include <gtest/gtest.h>

#include <vector>

namespace malt {
namespace {

std::vector<char*> MakeArgv(std::vector<std::string>& storage) {
  std::vector<char*> argv;
  for (auto& s : storage) {
    argv.push_back(s.data());
  }
  return argv;
}

TEST(Flags, DefaultsWhenAbsent) {
  std::vector<std::string> args = {"prog"};
  auto argv = MakeArgv(args);
  Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("ranks", 10), 10);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.1), 0.1);
  EXPECT_EQ(flags.GetString("graph", "all"), "all");
  EXPECT_TRUE(flags.GetBool("sync", true));
  flags.Finish();
}

TEST(Flags, EqualsForm) {
  std::vector<std::string> args = {"prog", "--ranks=20", "--lr=0.5", "--graph=halton",
                                   "--sync=false"};
  auto argv = MakeArgv(args);
  Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("ranks", 10), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("lr", 0.1), 0.5);
  EXPECT_EQ(flags.GetString("graph", "all"), "halton");
  EXPECT_FALSE(flags.GetBool("sync", true));
  flags.Finish();
}

TEST(Flags, SpaceSeparatedForm) {
  std::vector<std::string> args = {"prog", "--ranks", "8"};
  auto argv = MakeArgv(args);
  Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(flags.GetInt("ranks", 10), 8);
  flags.Finish();
}

TEST(Flags, BareBooleanFlag) {
  std::vector<std::string> args = {"prog", "--verbose"};
  auto argv = MakeArgv(args);
  Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(flags.GetBool("verbose", false));
  flags.Finish();
}

TEST(FlagsDeathTest, UnknownFlagAborts) {
  std::vector<std::string> args = {"prog", "--nonsense=1"};
  auto argv = MakeArgv(args);
  Flags flags;
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  (void)flags.GetInt("ranks", 1);
  EXPECT_DEATH(flags.Finish(), "unknown flag");
}

}  // namespace
}  // namespace malt
