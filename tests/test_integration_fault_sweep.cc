// Property sweep: inject a fail-stop kill at many different points in a
// distributed training run; every run must (a) finish, (b) agree on the
// survivor set, and (c) still converge. This exercises failure during
// scatter, gather, barrier wait, and compute.

#include <gtest/gtest.h>

#include <map>

#include "src/apps/svm_app.h"
#include "src/ml/dataset.h"

namespace malt {
namespace {

const SparseDataset& FaultData() {
  static const SparseDataset data = [] {
    ClassificationConfig config;
    config.dim = 1000;
    config.train_n = 8000;
    config.test_n = 500;
    config.avg_nnz = 30;
    config.margin = 0.3;
    return MakeClassification(config);
  }();
  return data;
}

struct FaultCase {
  double kill_fraction;  // of the fault-free run time
  int victim;
  SyncMode sync;
};

class FaultSweep : public ::testing::TestWithParam<FaultCase> {};

namespace {
SvmAppConfig SweepConfig() {
  SvmAppConfig config;
  config.data = &FaultData();
  config.epochs = 8;
  config.cb_size = 400;
  config.average = SvmAppConfig::Average::kModel;
  config.evals_per_epoch = 1;
  return config;
}

MaltOptions SweepOptions(SyncMode sync) {
  MaltOptions options;
  options.ranks = 5;
  options.sync = sync;
  options.barrier_timeout = FromSeconds(0.002);
  options.fault.recovery_cost = FromSeconds(0.001);
  // Protocol-validate every sweep point: a kill mid-scatter or mid-barrier
  // must not produce torn consumes, stamp regressions, or barrier-separation
  // violations among the survivors.
  options.check = CheckLevel::kCheap;
  return options;
}

// Fault-free duration per sync mode, measured once: kill times are set as
// fractions of it so every kill lands mid-run.
double BaselineSeconds(SyncMode sync) {
  static std::map<SyncMode, double> cache;
  auto it = cache.find(sync);
  if (it == cache.end()) {
    const SvmRunResult clean = RunSvm(SweepOptions(sync), SweepConfig());
    it = cache.emplace(sync, clean.seconds_total).first;
  }
  return it->second;
}
}  // namespace

TEST_P(FaultSweep, TrainingSurvivesAndConverges) {
  const FaultCase test_case = GetParam();
  const SvmAppConfig config = SweepConfig();
  const MaltOptions options = SweepOptions(test_case.sync);

  Malt malt(options);
  malt.ScheduleKill(test_case.victim,
                    test_case.kill_fraction * BaselineSeconds(test_case.sync));
  const SvmRunResult result = RunDistributedSvm(malt, config);

  EXPECT_EQ(malt.survivors(), 4);
  EXPECT_FALSE(malt.rank_survived(test_case.victim));
  EXPECT_GT(malt.checker().events_checked(), 0);
  EXPECT_EQ(malt.checker().violation_count(), 0)
      << malt.checker().ReportJson();
  if (test_case.victim != 0) {
    // Rank 0 is the metrics probe; when it is the victim there is no curve,
    // but the run completing with the right survivor set is the property.
    EXPECT_LT(result.final_loss, 0.70) << "killed rank " << test_case.victim << " at fraction "
                                       << test_case.kill_fraction;
    EXPECT_GT(result.final_accuracy, 0.68);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KillPoints, FaultSweep,
    ::testing::Values(FaultCase{0.02, 1, SyncMode::kBSP},  // almost immediately
                      FaultCase{0.25, 2, SyncMode::kBSP},
                      FaultCase{0.50, 3, SyncMode::kBSP},
                      FaultCase{0.85, 4, SyncMode::kBSP},  // near the end
                      FaultCase{0.30, 0, SyncMode::kBSP},  // the probe rank itself dies
                      FaultCase{0.40, 2, SyncMode::kASP},
                      FaultCase{0.60, 1, SyncMode::kSSP}));

TEST(FaultSweepExtra, TwoSequentialFailures) {
  SvmAppConfig config;
  config.data = &FaultData();
  config.epochs = 10;
  config.cb_size = 400;
  config.average = SvmAppConfig::Average::kModel;
  config.evals_per_epoch = 1;

  MaltOptions options;
  options.ranks = 6;
  options.sync = SyncMode::kBSP;
  options.barrier_timeout = FromSeconds(0.002);
  options.fault.recovery_cost = FromSeconds(0.001);
  options.check = CheckLevel::kCheap;

  Malt malt(options);
  malt.ScheduleKill(5, 0.15 * BaselineSeconds(SyncMode::kBSP));
  malt.ScheduleKill(4, 0.55 * BaselineSeconds(SyncMode::kBSP));
  const SvmRunResult result = RunDistributedSvm(malt, config);
  EXPECT_EQ(malt.survivors(), 4);
  EXPECT_LT(result.final_loss, 0.70);
  EXPECT_EQ(malt.checker().violation_count(), 0) << malt.checker().ReportJson();
}

}  // namespace
}  // namespace malt
