// Fault-monitor tests: failure detection through failed writes, health
// checks, survivor-group rebuild, recovery listeners, and local fault
// trapping (the paper's processor-exception path).

#include "src/fault/monitor.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "src/comm/graph.h"
#include "src/simnet/fabric.h"

namespace malt {
namespace {

FabricOptions FastNet() {
  FabricOptions opts;
  opts.net.latency = 1000;
  opts.net.bandwidth_bytes_per_sec = 1e9;
  opts.net.per_message_overhead = 0;
  return opts;
}

std::span<const std::byte> AsBytes(const void* p, size_t n) {
  return {static_cast<const std::byte*>(p), n};
}

struct Cluster {
  explicit Cluster(int n) : engine(), fabric(engine, n, FastNet()), domain(engine, fabric, n) {}

  void Run(const std::function<void(int, Dstorm&, FaultMonitor&, Process&)>& body) {
    for (int rank = 0; rank < domain.size(); ++rank) {
      engine.AddProcess("rank" + std::to_string(rank), [this, rank, body](Process& p) {
        Dstorm& d = domain.node(rank);
        d.Bind(p);
        FaultMonitor monitor(d, FaultMonitorOptions{});
        body(rank, d, monitor, p);
      });
    }
    engine.Run();
  }

  Engine engine;
  Fabric fabric;
  DstormDomain domain;
};

TEST(FaultMonitor, NoFailureNoRecovery) {
  Cluster cluster(2);
  cluster.Run([&](int rank, Dstorm& d, FaultMonitor& monitor, Process&) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = AllToAllGraph(2);
    const SegmentId seg = d.CreateSegment(opts);
    ASSERT_TRUE(d.Scatter(seg, AsBytes(&rank, sizeof(rank)), 0).ok());
    ASSERT_TRUE(d.Flush().ok());
    EXPECT_TRUE(monitor.CheckAndRecover().empty());
    EXPECT_EQ(monitor.recoveries(), 0);
  });
}

TEST(FaultMonitor, DetectsDeadPeerViaFailedWrite) {
  Cluster cluster(3);
  cluster.engine.ScheduleKill(2, 500);
  std::vector<int> removed_by_0;
  int64_t recoveries_0 = 0;

  cluster.Run([&](int rank, Dstorm& d, FaultMonitor& monitor, Process& p) {
    SegmentOptions opts;
    opts.obj_bytes = sizeof(int);
    opts.graph = AllToAllGraph(3);
    const SegmentId seg = d.CreateSegment(opts);
    if (rank == 2) {
      p.Advance(1'000'000);  // dies at t=500
      return;
    }
    p.SleepUntil(10'000);  // scatter after node 2 is dead
    ASSERT_FALSE(d.Scatter(seg, AsBytes(&rank, sizeof(rank)), 0).ok() == false);
    (void)d.Flush();
    const std::vector<int> removed = monitor.CheckAndRecover();
    if (rank == 0) {
      removed_by_0 = removed;
      recoveries_0 = monitor.recoveries();
    }
    EXPECT_FALSE(d.InGroup(2));
    EXPECT_TRUE(d.InGroup(1 - rank));
    // Subsequent collectives work among survivors.
    ASSERT_TRUE(d.Barrier().ok());
  });

  ASSERT_EQ(removed_by_0.size(), 1u);
  EXPECT_EQ(removed_by_0[0], 2);
  EXPECT_EQ(recoveries_0, 1);
}

TEST(FaultMonitor, HealthCheckFindsSilentlyDeadPeer) {
  // Node 1 never receives writes from node 0 (ring 0->1->2->0 means 0 writes
  // only to 1)... use a graph where 0 doesn't write to the dead node so only
  // the active health check can discover the death.
  Cluster cluster(3);
  cluster.engine.ScheduleKill(2, 100);
  cluster.Run([&](int rank, Dstorm& d, FaultMonitor& monitor, Process& p) {
    if (rank == 2) {
      p.Advance(1'000'000);
      return;
    }
    p.SleepUntil(10'000);
    const std::vector<int> removed = monitor.HealthCheckAndRecover();
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0], 2);
    EXPECT_FALSE(d.InGroup(2));
  });
}

TEST(FaultMonitor, RecoveryListenerFires) {
  Cluster cluster(2);
  cluster.engine.ScheduleKill(1, 100);
  std::vector<int> listener_removed;
  cluster.Run([&](int rank, Dstorm&, FaultMonitor& monitor, Process& p) {
    if (rank == 1) {
      p.Advance(1'000'000);
      return;
    }
    monitor.AddRecoveryListener(
        [&](const std::vector<int>& removed) { listener_removed = removed; });
    p.SleepUntil(10'000);
    monitor.HealthCheckAndRecover();
  });
  ASSERT_EQ(listener_removed.size(), 1u);
  EXPECT_EQ(listener_removed[0], 1);
}

TEST(FaultMonitor, RecoveryChargesTime) {
  Cluster cluster(2);
  cluster.engine.ScheduleKill(1, 100);
  SimTime before = 0;
  SimTime after = 0;
  cluster.Run([&](int rank, Dstorm&, FaultMonitor& monitor, Process& p) {
    if (rank == 1) {
      p.Advance(1'000'000);
      return;
    }
    p.SleepUntil(10'000);
    before = p.now();
    monitor.HealthCheckAndRecover();
    after = p.now();
  });
  EXPECT_GE(after - before, FromSeconds(0.2));  // modeled recovery delay
}

TEST(FaultMonitor, GuardLocalTrapsExceptionAndKillsReplica) {
  Cluster cluster(2);
  bool after_guard_reached = false;
  cluster.Run([&](int rank, Dstorm& d, FaultMonitor& monitor, Process& p) {
    if (rank == 0) {
      monitor.GuardLocal([] { throw std::runtime_error("simulated divide by zero"); });
      after_guard_reached = true;  // must never run
      return;
    }
    // Peer detects the self-terminated replica.
    p.SleepUntil(100'000);
    EXPECT_FALSE(d.ProbePeer(0));
  });
  EXPECT_FALSE(after_guard_reached);
  EXPECT_FALSE(cluster.engine.alive(0));
}

TEST(FaultMonitor, GuardLocalPassesThroughNormally) {
  Cluster cluster(1);
  int ran = 0;
  cluster.Run([&](int, Dstorm&, FaultMonitor& monitor, Process&) {
    monitor.GuardLocal([&] { ran = 1; });
  });
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(cluster.engine.alive(0));
}

TEST(FaultMonitor, DoubleRecoveryIsIdempotent) {
  Cluster cluster(3);
  cluster.engine.ScheduleKill(2, 100);
  cluster.Run([&](int rank, Dstorm& d, FaultMonitor& monitor, Process& p) {
    if (rank == 2) {
      p.Advance(1'000'000);
      return;
    }
    p.SleepUntil(10'000);
    EXPECT_EQ(monitor.HealthCheckAndRecover().size(), 1u);
    EXPECT_TRUE(monitor.HealthCheckAndRecover().empty());  // already removed
    EXPECT_EQ(d.GroupMembers().size(), 2u);
  });
}

}  // namespace
}  // namespace malt
