// Collaborative filtering by distributed matrix factorization (§4.1.2):
// Netflix-like ratings factorized with SGD, replicas exchanging only the
// factor rows they touched, folded with the *replace* UDF — single-machine
// Hogwild extended across the cluster.
//
//   ./matrix_factorization --ranks=2 --epochs=10 --rank_k=8

#include <cstdio>

#include "src/apps/mf_app.h"
#include "src/base/flags.h"
#include "src/ml/dataset.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 2, "number of model replicas"));
  options.sync = *malt::ParseSyncMode(flags.GetString("sync", "asp", "bsp|asp"));

  malt::RatingsConfig data_config;
  data_config.rank = static_cast<int>(flags.GetInt("rank_k", 8, "latent dimension"));

  malt::MfAppConfig config;
  config.epochs = static_cast<int>(flags.GetInt("epochs", 10, "training epochs"));
  config.cb_size = static_cast<int>(flags.GetInt("cb", 1000, "ratings per comm round"));
  config.mf.rank = data_config.rank;
  config.sort_by_item = flags.GetBool("sort_by_item", true,
                                      "item-sorted split (avoids Hogwild conflicts)");
  flags.Finish();

  malt::RatingsDataset data = malt::MakeRatings(data_config);
  config.data = &data;
  std::printf("%s: %zu train / %zu test ratings, %d users x %d items, latent rank %d\n",
              data.name.c_str(), data.train.size(), data.test.size(), data.users, data.items,
              config.mf.rank);

  malt::MfRunResult result = malt::RunMf(options, config);
  std::printf("%d ranks (%s): test RMSE %.4f in %.4fs virtual (%.4fs/epoch), %.1f MB moved\n",
              options.ranks, malt::ToString(options.sync).c_str(), result.final_rmse,
              result.seconds_total, result.seconds_per_epoch,
              static_cast<double>(result.total_bytes) / 1e6);
  std::printf("RMSE curve (per-rank ratings processed -> test RMSE):\n");
  for (size_t i = 0; i < result.rmse_vs_ratings.size(); i += 4) {
    std::printf("  %8.0f  %.4f\n", result.rmse_vs_ratings.x[i], result.rmse_vs_ratings.y[i]);
  }
  return 0;
}
