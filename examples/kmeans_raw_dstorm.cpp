// Using dstorm directly with an opaque data structure (paper §4, last
// paragraph): "for such opaque representations, developers directly use
// dstorm ... the opaque data-structures need to provide serialization/
// de-serialization methods."
//
// The application is distributed k-means (the paper lists k-means among the
// gradient-descent family §2): each replica assigns its shard of points to
// the nearest centroid, then exchanges per-centroid partial sums as a
// custom-serialized struct over a raw dstorm segment — no MaltVector.
//
//   ./kmeans_raw_dstorm --ranks=4 --k=5 --iters=10

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/base/flags.h"
#include "src/base/rng.h"
#include "src/comm/graph.h"
#include "src/core/runtime.h"

namespace {

constexpr int kDims = 2;

// The "legacy" application type: per-centroid partial statistics.
struct CentroidStats {
  double sum[kDims];
  int64_t count;
};

// Serialization contract for dstorm (copy-in/copy-out, paper §4).
size_t WireBytes(int k) { return static_cast<size_t>(k) * sizeof(CentroidStats); }

void Serialize(const std::vector<CentroidStats>& stats, std::byte* out) {
  std::memcpy(out, stats.data(), stats.size() * sizeof(CentroidStats));
}

void Deserialize(std::span<const std::byte> in, std::vector<CentroidStats>* out) {
  out->resize(in.size() / sizeof(CentroidStats));
  std::memcpy(out->data(), in.data(), in.size());
}

}  // namespace

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 4, "number of replicas"));
  const int k = static_cast<int>(flags.GetInt("k", 5, "clusters"));
  const int iters = static_cast<int>(flags.GetInt("iters", 10, "Lloyd iterations"));
  const int points_n = static_cast<int>(flags.GetInt("points", 20000, "total points"));
  flags.Finish();

  // Synthetic mixture: k well-separated Gaussian blobs.
  malt::Xoshiro256 rng(7);
  std::vector<std::array<double, kDims>> centers(static_cast<size_t>(k));
  for (auto& c : centers) {
    for (double& x : c) {
      x = rng.NextDouble() * 20.0 - 10.0;
    }
  }
  std::vector<std::array<double, kDims>> points(static_cast<size_t>(points_n));
  for (auto& p : points) {
    const auto& c = centers[rng.NextBounded(static_cast<uint64_t>(k))];
    for (int d = 0; d < kDims; ++d) {
      p[static_cast<size_t>(d)] = c[static_cast<size_t>(d)] + rng.NextGaussian() * 0.5;
    }
  }

  std::vector<std::array<double, kDims>> final_centroids(static_cast<size_t>(k));
  malt::Malt malt(options);
  malt.Run([&](malt::Worker& w) {
    // Raw dstorm segment carrying the opaque struct array.
    malt::SegmentOptions seg_opts;
    seg_opts.obj_bytes = WireBytes(k);
    seg_opts.graph = malt::AllToAllGraph(w.world());
    const malt::SegmentId seg = w.dstorm().CreateSegment(seg_opts);

    // Same deterministic initial centroids everywhere.
    std::vector<std::array<double, kDims>> centroids(static_cast<size_t>(k));
    malt::Xoshiro256 init(99);
    for (auto& c : centroids) {
      for (double& x : c) {
        x = init.NextDouble() * 20.0 - 10.0;
      }
    }

    const malt::Worker::Shard shard = w.ShardRange(points.size());
    std::vector<CentroidStats> stats(static_cast<size_t>(k));
    std::vector<std::byte> wire(WireBytes(k));
    std::vector<CentroidStats> incoming;

    for (int iter = 0; iter < iters; ++iter) {
      // Local assignment pass over my shard.
      for (auto& s : stats) {
        s = CentroidStats{};
      }
      for (size_t i = shard.begin; i < shard.end; ++i) {
        int best = 0;
        double best_d2 = 1e300;
        for (int c = 0; c < k; ++c) {
          double d2 = 0;
          for (int d = 0; d < kDims; ++d) {
            const double diff =
                points[i][static_cast<size_t>(d)] - centroids[static_cast<size_t>(c)][static_cast<size_t>(d)];
            d2 += diff * diff;
          }
          if (d2 < best_d2) {
            best_d2 = d2;
            best = c;
          }
        }
        for (int d = 0; d < kDims; ++d) {
          stats[static_cast<size_t>(best)].sum[d] += points[i][static_cast<size_t>(d)];
        }
        stats[static_cast<size_t>(best)].count += 1;
      }
      w.ChargeFlops(static_cast<double>(shard.size()) * k * kDims * 3);

      // Exchange the opaque stats: serialize -> scatter -> gather -> merge.
      Serialize(stats, wire.data());
      (void)w.dstorm().Scatter(seg, wire, static_cast<uint32_t>(iter + 1));
      (void)w.dstorm().Flush();
      (void)w.Barrier();
      w.dstorm().Gather(seg, [&](const malt::RecvObject& obj) {
        Deserialize(obj.bytes, &incoming);
        for (int c = 0; c < k; ++c) {
          for (int d = 0; d < kDims; ++d) {
            stats[static_cast<size_t>(c)].sum[d] += incoming[static_cast<size_t>(c)].sum[d];
          }
          stats[static_cast<size_t>(c)].count += incoming[static_cast<size_t>(c)].count;
        }
      });

      // Lloyd update on the merged statistics (identical on every replica).
      for (int c = 0; c < k; ++c) {
        if (stats[static_cast<size_t>(c)].count > 0) {
          for (int d = 0; d < kDims; ++d) {
            centroids[static_cast<size_t>(c)][static_cast<size_t>(d)] =
                stats[static_cast<size_t>(c)].sum[d] /
                static_cast<double>(stats[static_cast<size_t>(c)].count);
          }
        }
      }
    }
    if (w.rank() == 0) {
      final_centroids = centroids;
    }
  });

  std::printf("recovered %d centroids in %d Lloyd iterations over %d replicas:\n", k, iters,
              options.ranks);
  for (const auto& c : final_centroids) {
    // Distance to the nearest true center shows recovery quality.
    double best = 1e300;
    for (const auto& truth : centers) {
      double d2 = 0;
      for (int d = 0; d < kDims; ++d) {
        const double diff = c[static_cast<size_t>(d)] - truth[static_cast<size_t>(d)];
        d2 += diff * diff;
      }
      best = std::min(best, std::sqrt(d2));
    }
    std::printf("  (%7.3f, %7.3f)  nearest true center: %.3f away\n", c[0], c[1], best);
  }
  return 0;
}
