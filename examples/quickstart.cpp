// Quickstart: the paper's Algorithm 2 in ~40 lines of application code.
//
// Launches N model replicas; each trains an SVM on its shard of synthetic
// data, scatters its model update after every communication batch, gathers
// whatever peers have pushed, and folds it in. This is exactly the
// "serial SGD -> data-parallel SGD" transformation from Figure 4 of the
// paper (Table 1 API: createVector / scatter / gather / barrier).
//
//   ./quickstart --ranks=4 --epochs=5 --sync=bsp --graph=all

#include <cstdio>

#include "src/base/flags.h"
#include "src/core/runtime.h"
#include "src/ml/dataset.h"
#include "src/ml/metrics.h"
#include "src/ml/svm.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 4, "number of model replicas"));
  options.sync = *malt::ParseSyncMode(flags.GetString("sync", "bsp", "bsp|asp|ssp"));
  options.graph = *malt::ParseGraphKind(flags.GetString("graph", "all", "all|halton|ring"));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5, "training epochs"));
  const int cb = static_cast<int>(flags.GetInt("cb", 1000, "examples per comm round"));
  flags.Finish();

  // A small synthetic classification task (10k examples, 2k features).
  malt::ClassificationConfig data_config;
  data_config.dim = 2000;
  data_config.train_n = 10000;
  data_config.test_n = 1000;
  data_config.avg_nnz = 40;
  malt::SparseDataset data = malt::MakeClassification(data_config);

  malt::Malt malt(options);
  malt.Run([&](malt::Worker& w) {
    // Algorithm 2: maltGradient g(SPARSE, ALL) — here a dense model vector.
    malt::MaltVector model = w.CreateVector("w", data.dim);
    malt::SvmSgd svm(model.data(), malt::SvmOptions{});
    const malt::Worker::Shard shard = w.ShardRange(data.train.size());

    for (int epoch = 0; epoch < epochs; ++epoch) {
      int in_batch = 0;
      double flops = 0;
      for (size_t i = shard.begin; i < shard.end; ++i) {
        svm.TrainExample(data.train[i]);  // g = cal_gradient(data[i]); w += g
        flops += svm.last_step_flops();
        if (++in_batch >= cb || i + 1 == shard.end) {
          w.ChargeFlops(flops);
          model.set_iteration(static_cast<uint32_t>(epoch + 1));
          (void)model.Scatter();         // g.scatter(ALL): one-sided writes
          if (options.sync == malt::SyncMode::kBSP) {
            (void)w.dstorm().Flush();
            (void)w.Barrier();           // optional g.barrier()
          }
          model.GatherAverage();         // g.gather(AVG), applied locally
          in_batch = 0;
          flops = 0;
        }
      }
      if (w.rank() == 0) {
        std::printf("epoch %d (t=%.4fs virtual): test loss %.4f accuracy %.3f\n", epoch + 1,
                    w.now_seconds(), malt::MeanHingeLoss(model.data(), data.test),
                    malt::Accuracy(model.data(), data.test));
      }
    }
  });

  std::printf("done: %d replicas, %lld bytes moved over the fabric\n", options.ranks,
              static_cast<long long>(malt.traffic().TotalBytes()));
  return 0;
}
