// Model parallelism over raw dstorm (paper §4: "Developers can also
// implement model-parallelism by carefully sharding their model parameters
// over multiple dstorm objects").
//
// A linear model is split by coordinate range: each replica owns one
// partition of the weights and its partition of every example's features.
// Per minibatch, replicas compute partial dot-products for their partition,
// exchange the partials through a dstorm segment (one float per example),
// sum them into full scores, and update only their own partition — the
// communication per iteration is O(batch), not O(model), exactly the
// property the paper says makes model-parallel splits non-trivial to get
// right.
//
//   ./model_parallel --ranks=4 --epochs=5

#include <cstdio>
#include <cstring>
#include <vector>

#include "src/base/flags.h"
#include "src/comm/graph.h"
#include "src/core/runtime.h"
#include "src/ml/dataset.h"
#include "src/ml/loss.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 4, "model partitions"));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 5, "training epochs"));
  const int batch = static_cast<int>(flags.GetInt("batch", 64, "examples per exchange"));
  flags.Finish();

  malt::ClassificationConfig data_config;
  data_config.dim = 4000;
  data_config.train_n = 8000;
  data_config.test_n = 1000;
  data_config.avg_nnz = 60;
  const malt::SparseDataset data = malt::MakeClassification(data_config);

  const int ranks = options.ranks;
  std::vector<double> final_loss(1, 0.0);

  malt::Malt malt(options);
  malt.Run([&](malt::Worker& w) {
    // My coordinate partition [lo, hi).
    const size_t lo = data.dim * static_cast<size_t>(w.rank()) / static_cast<size_t>(ranks);
    const size_t hi = data.dim * static_cast<size_t>(w.rank() + 1) / static_cast<size_t>(ranks);
    std::vector<float> weights(hi - lo, 0.0f);

    // Partial-score exchange: `batch` floats per replica per round.
    malt::SegmentOptions seg_opts;
    seg_opts.obj_bytes = static_cast<size_t>(batch) * sizeof(float);
    seg_opts.graph = malt::AllToAllGraph(ranks);
    const malt::SegmentId seg = w.dstorm().CreateSegment(seg_opts);

    std::vector<float> partial(static_cast<size_t>(batch));
    std::vector<float> scores(static_cast<size_t>(batch));
    const float eta = 0.3f;

    for (int epoch = 0; epoch < epochs; ++epoch) {
      for (size_t start = 0; start + static_cast<size_t>(batch) <= data.train.size();
           start += static_cast<size_t>(batch)) {
        // 1. Partial dot products for my coordinate range.
        for (int b = 0; b < batch; ++b) {
          const malt::SparseExample& ex = data.train[start + static_cast<size_t>(b)];
          double acc = 0;
          for (size_t k = 0; k < ex.idx.size(); ++k) {
            if (ex.idx[k] >= lo && ex.idx[k] < hi) {
              acc += static_cast<double>(weights[ex.idx[k] - lo]) * ex.val[k];
            }
          }
          partial[static_cast<size_t>(b)] = static_cast<float>(acc);
        }
        w.ChargeFlops(2.0 * batch * data_config.avg_nnz / ranks);

        // 2. Exchange partials; full score = sum over partitions.
        (void)w.dstorm().Scatter(
            seg, std::as_bytes(std::span<const float>(partial)),
            static_cast<uint32_t>(epoch));
        (void)w.dstorm().Flush();
        (void)w.Barrier();
        std::copy(partial.begin(), partial.end(), scores.begin());
        w.dstorm().Gather(seg, [&](const malt::RecvObject& obj) {
          const auto* incoming = reinterpret_cast<const float*>(obj.bytes.data());
          for (int b = 0; b < batch; ++b) {
            scores[static_cast<size_t>(b)] += incoming[b];
          }
        });
        w.ChargeFlops(static_cast<double>(batch) * ranks);

        // 3. Hinge update on my partition only.
        for (int b = 0; b < batch; ++b) {
          const malt::SparseExample& ex = data.train[start + static_cast<size_t>(b)];
          if (malt::HingeLoss(scores[static_cast<size_t>(b)], ex.label) > 0) {
            for (size_t k = 0; k < ex.idx.size(); ++k) {
              if (ex.idx[k] >= lo && ex.idx[k] < hi) {
                weights[ex.idx[k] - lo] += eta * ex.label * ex.val[k];
              }
            }
          }
        }
        w.ChargeFlops(2.0 * batch * data_config.avg_nnz / ranks);
      }
    }

    // Evaluation with the distributed model: same partial-score exchange
    // over the test set, one batch at a time.
    double loss_total = 0;
    size_t evaluated = 0;
    for (size_t start = 0; start + static_cast<size_t>(batch) <= data.test.size();
         start += static_cast<size_t>(batch)) {
      for (int b = 0; b < batch; ++b) {
        const malt::SparseExample& ex = data.test[start + static_cast<size_t>(b)];
        double acc = 0;
        for (size_t k = 0; k < ex.idx.size(); ++k) {
          if (ex.idx[k] >= lo && ex.idx[k] < hi) {
            acc += static_cast<double>(weights[ex.idx[k] - lo]) * ex.val[k];
          }
        }
        partial[static_cast<size_t>(b)] = static_cast<float>(acc);
      }
      (void)w.dstorm().Scatter(seg, std::as_bytes(std::span<const float>(partial)), 0);
      (void)w.dstorm().Flush();
      (void)w.Barrier();
      std::copy(partial.begin(), partial.end(), scores.begin());
      w.dstorm().Gather(seg, [&](const malt::RecvObject& obj) {
        const auto* incoming = reinterpret_cast<const float*>(obj.bytes.data());
        for (int b = 0; b < batch; ++b) {
          scores[static_cast<size_t>(b)] += incoming[b];
        }
      });
      for (int b = 0; b < batch; ++b) {
        loss_total += malt::HingeLoss(scores[static_cast<size_t>(b)],
                                      data.test[start + static_cast<size_t>(b)].label);
        ++evaluated;
      }
    }
    if (w.rank() == 0) {
      final_loss[0] = loss_total / static_cast<double>(evaluated);
      std::printf("model-parallel SVM: %d partitions of %zu weights each\n", ranks,
                  weights.size());
      std::printf("test hinge loss %.4f after %d epochs (%.4fs virtual)\n", final_loss[0],
                  epochs, w.now_seconds());
    }
  });

  std::printf("network: %.2f MB (O(batch) partial-score exchange per iteration, "
              "not O(model))\n",
              static_cast<double>(malt.traffic().TotalBytes()) / 1e6);
  return final_loss[0] < 0.9 ? 0 : 1;
}
