// Developer-specified dataflow (§3.4): the paper lets applications pass an
// arbitrary (connected) graph describing which replicas exchange updates.
// This example trains the same workload over four dataflows — all-to-all,
// Halton, ring, and a custom two-cluster graph with a bridge — and compares
// traffic and convergence, plus a fine-grained ScatterTo to a chosen subset.
//
//   ./custom_dataflow --ranks=6

#include <cstdio>

#include "src/apps/svm_app.h"
#include "src/base/flags.h"
#include "src/comm/graph.h"
#include "src/ml/dataset.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  const int ranks = static_cast<int>(flags.GetInt("ranks", 6, "number of model replicas"));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6, "training epochs"));
  flags.Finish();

  malt::ClassificationConfig data_config;
  data_config.dim = 4000;
  data_config.train_n = 24000;
  data_config.test_n = 1000;
  data_config.avg_nnz = 50;
  malt::SparseDataset data = malt::MakeClassification(data_config);

  malt::SvmAppConfig config;
  config.data = &data;
  config.epochs = epochs;
  config.cb_size = 1000;
  config.evals_per_epoch = 1;

  // Two triangles bridged by one edge pair — e.g. two racks with one uplink.
  // GraphFromSpec validates strong connectivity (a disconnected dataflow
  // would let the replicas diverge).
  const std::string spec = "0>1,1>2,2>0,3>4,4>5,5>3,2>3,3>2";

  std::printf("# dataflow final_loss virtual_seconds network_MB\n");
  struct Setup {
    const char* name;
    malt::GraphKind kind;
  };
  for (const Setup& setup : {Setup{"all-to-all", malt::GraphKind::kAll},
                             Setup{"halton", malt::GraphKind::kHalton},
                             Setup{"ring", malt::GraphKind::kRing},
                             Setup{"two-racks", malt::GraphKind::kCustom}}) {
    malt::MaltOptions options;
    options.ranks = ranks;
    options.sync = malt::SyncMode::kBSP;
    options.graph = setup.kind;
    options.graph_spec = spec;
    malt::SvmRunResult r = malt::RunSvm(options, config);
    std::printf("%s %.4f %.4f %.1f\n", setup.name, r.final_loss, r.seconds_total,
                static_cast<double>(r.total_bytes) / 1e6);
  }

  // Fine-grained per-call dataflow: rank 0 pushes only to a chosen subset
  // (the scatter(dataflow) overload from Table 1).
  malt::MaltOptions options;
  options.ranks = ranks;
  malt::Malt malt(options);
  malt.Run([&](malt::Worker& w) {
    malt::MaltVector v = w.CreateVector("v", 8);
    if (w.rank() == 0) {
      v.data()[0] = 42.0f;
      const std::vector<int> subset = {1, ranks - 1};
      (void)v.ScatterTo(subset);  // push to two replicas only
      (void)w.dstorm().Flush();
    }
    (void)w.Barrier();
    const int got = v.GatherSum().received;
    std::printf("rank %d received %d update(s)%s\n", w.rank(), got,
                got > 0 ? " (chosen by rank 0's ScatterTo)" : "");
  });
  return 0;
}
