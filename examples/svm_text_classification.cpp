// Document classification with distributed SVM-SGD (§4.1.1) on an RCV1-like
// sparse text workload, using the full application wrapper: gradient
// exchange with the sum fold, any dataflow/sync mode, loss curves, and a
// comparison against single-rank SGD.
//
//   ./svm_text_classification --ranks=10 --graph=halton --sync=asp

#include <cstdio>

#include "src/apps/svm_app.h"
#include "src/base/flags.h"
#include "src/ml/dataset.h"
#include "src/ml/io.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 10, "number of model replicas"));
  options.sync = *malt::ParseSyncMode(flags.GetString("sync", "bsp", "bsp|asp|ssp"));
  options.graph = *malt::ParseGraphKind(flags.GetString("graph", "all", "all|halton|ring"));

  malt::SvmAppConfig config;
  config.epochs = static_cast<int>(flags.GetInt("epochs", 10, "training epochs"));
  config.cb_size = static_cast<int>(flags.GetInt("cb", 5000, "communication batch size"));
  config.average = flags.GetString("average", "gradient", "gradient|model") == "model"
                       ? malt::SvmAppConfig::Average::kModel
                       : malt::SvmAppConfig::Average::kGradient;
  const bool compare_serial = flags.GetBool("compare_serial", true, "also run 1 rank");
  const std::string train_file =
      flags.GetString("train", "", "LIBSVM training file (default: synthetic rcv1-like)");
  const std::string test_file = flags.GetString("test", "", "LIBSVM test file");
  flags.Finish();

  malt::SparseDataset data;
  if (!train_file.empty()) {
    // The paper's load_data(f): shard a real on-disk dataset across replicas.
    malt::Result<malt::SparseDataset> loaded =
        test_file.empty() ? malt::LoadLibsvm(train_file)
                          : malt::LoadLibsvm(train_file, test_file);
    if (!loaded.ok()) {
      std::printf("failed to load: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    data = *std::move(loaded);
  } else {
    std::printf("generating rcv1-like dataset...\n");
    data = malt::MakeClassification(malt::Rcv1Like());
  }
  config.data = &data;
  std::printf("%s: %zu train / %zu test, %zu features, %.1f nnz/doc\n", data.name.c_str(),
              data.train.size(), data.test.size(), data.dim, data.AvgNnz());

  malt::SvmRunResult parallel = malt::RunSvm(options, config);
  std::printf("%d ranks (%s, %s): final loss %.4f accuracy %.3f in %.4fs virtual, "
              "%.1f MB network\n",
              options.ranks, malt::ToString(options.sync).c_str(),
              malt::ToString(options.graph).c_str(), parallel.final_loss,
              parallel.final_accuracy, parallel.seconds_total,
              static_cast<double>(parallel.total_bytes) / 1e6);
  std::printf("phase split: gradient %.4fs scatter %.4fs gather %.4fs barrier/wait %.4fs\n",
              parallel.time_gradient, parallel.time_scatter, parallel.time_gather,
              parallel.time_barrier);

  if (compare_serial) {
    malt::MaltOptions serial_opts;
    serial_opts.ranks = 1;
    malt::SvmRunResult serial = malt::RunSvm(serial_opts, config);
    std::printf("1 rank: final loss %.4f in %.4fs virtual\n", serial.final_loss,
                serial.seconds_total);
    const double t = malt::FirstCrossing(serial.loss_vs_time, parallel.final_loss);
    if (t > 0) {
      std::printf("single rank needs %.4fs to reach the parallel loss => %.1fx speedup\n", t,
                  t / parallel.seconds_total);
    } else {
      std::printf("single rank never reaches the parallel loss %.4f in %d epochs\n",
                  parallel.final_loss, config.epochs);
    }
  }
  return 0;
}
