// Fault tolerance walkthrough (§3.3): training continues through the
// fail-stop loss of a replica. A kill is injected mid-run; fault monitors on
// the survivors detect the failed writes, run a health check, shrink the
// communication group, re-shard the dead replica's data, and training
// finishes and converges.
//
//   ./fault_tolerance --ranks=6 --kill_rank=3 --kill_at=0.02

#include <cstdio>

#include "src/apps/svm_app.h"
#include "src/base/flags.h"
#include "src/ml/dataset.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 6, "number of model replicas"));
  options.sync = malt::SyncMode::kBSP;
  options.barrier_timeout = malt::FromSeconds(0.005);
  options.fault.recovery_cost = malt::FromSeconds(0.002);
  const int kill_rank = static_cast<int>(flags.GetInt("kill_rank", 3, "replica to kill"));
  const double kill_at = flags.GetDouble("kill_at", 0.02, "virtual kill time, seconds");

  malt::SvmAppConfig config;
  config.epochs = static_cast<int>(flags.GetInt("epochs", 20, "training epochs"));
  config.cb_size = static_cast<int>(flags.GetInt("cb", 500, "examples per comm round"));
  config.average = malt::SvmAppConfig::Average::kModel;
  config.evals_per_epoch = 1;
  flags.Finish();

  malt::SparseDataset data = malt::MakeClassification(malt::DnaLike());
  config.data = &data;

  std::printf("training %d replicas; killing rank %d at t=%.3fs (fail-stop)...\n",
              options.ranks, kill_rank, kill_at);
  malt::Malt malt(options);
  malt.ScheduleKill(kill_rank, kill_at);
  malt::SvmRunResult result = malt::RunDistributedSvm(malt, config);

  std::printf("survivors: %d of %d\n", malt.survivors(), options.ranks);
  for (int rank = 0; rank < options.ranks; ++rank) {
    std::printf("  rank %d: %s\n", rank, malt.rank_survived(rank) ? "alive" : "killed");
  }
  std::printf("final loss %.4f accuracy %.3f after %.4fs virtual\n", result.final_loss,
              result.final_accuracy, result.seconds_total);
  std::printf("the survivors absorbed the dead replica's shard and training converged\n");
  return 0;
}
