// Click-through-rate prediction with a three-layer fully-connected network
// (§4.1.3): every layer synchronizes through its own MaltVector, mixing
// whole models (non-convex training) with the interleaved gradient+model
// scheme on a KDD12-like synthetic CTR dataset.
//
//   ./neural_network_ctr --ranks=8 --epochs=8 --cb=500

#include <cstdio>

#include "src/apps/nn_app.h"
#include "src/base/flags.h"
#include "src/ml/dataset.h"

int main(int argc, char** argv) {
  malt::Flags flags;
  flags.Parse(argc, argv);
  malt::MaltOptions options;
  options.ranks = static_cast<int>(flags.GetInt("ranks", 8, "number of model replicas"));
  options.sync = *malt::ParseSyncMode(flags.GetString("sync", "bsp", "bsp|asp|ssp"));

  malt::NnAppConfig config;
  config.epochs = static_cast<int>(flags.GetInt("epochs", 8, "training epochs"));
  config.cb_size = static_cast<int>(flags.GetInt("cb", 500, "examples per comm round"));
  config.mlp.hidden1 = static_cast<int>(flags.GetInt("hidden1", 32, "first hidden layer"));
  config.mlp.hidden2 = static_cast<int>(flags.GetInt("hidden2", 16, "second hidden layer"));
  config.mlp.eta = static_cast<float>(flags.GetDouble("eta", 0.16, "learning rate"));
  config.mixing = malt::NnAppConfig::Mixing::kModelAvg;
  flags.Finish();

  malt::ClassificationConfig data_config = malt::KddLike();
  data_config.train_n = 24000;
  malt::SparseDataset data = malt::MakeClassification(data_config);
  config.data = &data;
  std::printf("%s: %zu train / %zu test, %zu hashed features; net %zu-%d-%d-1\n",
              data.name.c_str(), data.train.size(), data.test.size(), data.dim, data.dim,
              config.mlp.hidden1, config.mlp.hidden2);

  malt::NnRunResult result = malt::RunNn(options, config);
  std::printf("%d ranks (%s): test AUC %.4f logloss %.4f in %.4fs virtual, %.1f MB moved\n",
              options.ranks, malt::ToString(options.sync).c_str(), result.final_auc,
              result.final_logloss, result.seconds_total,
              static_cast<double>(result.total_bytes) / 1e6);
  std::printf("AUC curve (virtual seconds -> test AUC):\n");
  for (size_t i = 0; i < result.auc_vs_time.size(); i += 2) {
    std::printf("  %7.3f  %.4f\n", result.auc_vs_time.x[i], result.auc_vs_time.y[i]);
  }
  return 0;
}
